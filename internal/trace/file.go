package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"cosmos/internal/memsys"
)

// Trace file format: the role Pintool captures played in the paper's §4.5
// tuning flow — a workload's address stream frozen to disk and replayed
// deterministically.
//
//	magic "CTRC" | version u8 | reserved [3]u8
//	records: addr u64 | flags u8 (bit0 write, bit1 dep) | thread u8 | region u16
//
// Files ending in .gz are gzip-compressed transparently.
const (
	fileMagic   = "CTRC"
	fileVersion = 1
	recordBytes = 12
)

// WriteFile drains up to n accesses from gen into path.
func WriteFile(path string, gen Generator, n uint64) (written uint64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()

	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	header := []byte(fileMagic + string([]byte{fileVersion, 0, 0, 0}))
	if _, err := bw.Write(header); err != nil {
		return 0, err
	}
	var rec [recordBytes]byte
	for written < n {
		a, ok := gen.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(rec[0:], uint64(a.Addr))
		var flags byte
		if a.Type == memsys.Write {
			flags |= 1
		}
		if a.Dep {
			flags |= 2
		}
		rec[8] = flags
		rec[9] = a.Thread
		binary.LittleEndian.PutUint16(rec[10:], a.Region)
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written++
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return written, err
		}
	}
	return written, nil
}

// FileGenerator replays a trace file as a Generator.
type FileGenerator struct {
	name string
	f    *os.File
	gz   *gzip.Reader
	r    *bufio.Reader
	eof  bool
	blk  []byte // NextBlock read buffer
}

// OpenFile opens a trace written by WriteFile.
func OpenFile(path string) (*FileGenerator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	g := &FileGenerator{name: "file:" + path, f: f}
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("trace: %w", err)
		}
		g.gz = gz
		r = gz
	}
	g.r = bufio.NewReaderSize(r, 1<<20)

	header := make([]byte, 8)
	if _, err := io.ReadFull(g.r, header); err != nil {
		g.Close()
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(header[:4]) != fileMagic {
		g.Close()
		return nil, errors.New("trace: bad magic — not a cosmos trace file")
	}
	if header[4] != fileVersion {
		g.Close()
		return nil, fmt.Errorf("trace: unsupported version %d", header[4])
	}
	return g, nil
}

// Name implements Generator.
func (g *FileGenerator) Name() string { return g.name }

// Next implements Generator.
func (g *FileGenerator) Next() (memsys.Access, bool) {
	if g.eof {
		return memsys.Access{}, false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(g.r, rec[:]); err != nil {
		g.eof = true
		return memsys.Access{}, false
	}
	a := memsys.Access{
		Addr:   memsys.Addr(binary.LittleEndian.Uint64(rec[0:])),
		Thread: rec[9],
		Region: binary.LittleEndian.Uint16(rec[10:]),
	}
	if rec[8]&1 != 0 {
		a.Type = memsys.Write
	}
	a.Dep = rec[8]&2 != 0
	return a, true
}

// NextBlock implements BlockGenerator: records are read and decoded in one
// pass over a block-sized read buffer instead of one ReadFull per record.
func (g *FileGenerator) NextBlock(dst []memsys.Access) int {
	if g.eof {
		return 0
	}
	want := len(dst) * recordBytes
	if want > len(g.blk) {
		g.blk = make([]byte, want)
	}
	got, err := io.ReadFull(g.r, g.blk[:want])
	got -= got % recordBytes
	if got == 0 {
		g.eof = true
		return 0
	}
	for i := 0; i < got/recordBytes; i++ {
		rec := g.blk[i*recordBytes:]
		a := memsys.Access{
			Addr:   memsys.Addr(binary.LittleEndian.Uint64(rec[0:])),
			Thread: rec[9],
			Region: binary.LittleEndian.Uint16(rec[10:]),
		}
		if rec[8]&1 != 0 {
			a.Type = memsys.Write
		}
		a.Dep = rec[8]&2 != 0
		dst[i] = a
	}
	if err != nil {
		g.eof = true
	}
	return got / recordBytes
}

// Close implements Closer.
func (g *FileGenerator) Close() {
	if g.gz != nil {
		g.gz.Close()
		g.gz = nil
	}
	if g.f != nil {
		g.f.Close()
		g.f = nil
	}
	g.eof = true
}
