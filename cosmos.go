// Package cosmos is the public API of the COSMOS reproduction — the
// RL-enhanced locality-aware counter-cache optimization for secure memory
// from "COSMOS: RL-Enhanced Locality-Aware Counter Cache Optimization for
// Secure Memory" (MICRO 2025).
//
// The package offers three layers:
//
//   - Simulation: Run executes a workload on a secure-memory design point
//     (non-protected, MorphCtr, EMCC-like, COSMOS variants) over the
//     paper's 4-core machine and returns the full metric set (IPC, CTR
//     cache behaviour, DRAM traffic decomposition, SMAT).
//
//   - Experiments: Experiments and RunExperiment regenerate the paper's
//     tables and figures at a chosen scale.
//
//   - Functional secure memory: NewSecureMemory exposes a bit-accurate
//     AES-CTR + MAC + Merkle-tree protected memory with real tamper and
//     replay detection, the substrate the timing model abstracts.
//
// Quickstart:
//
//	r, _ := cosmos.Run(cosmos.RunSpec{Workload: "DFS", Design: "COSMOS", Accesses: 1e6})
//	fmt.Println(r.IPC, r.CtrMissRate)
package cosmos

import (
	"fmt"

	"cosmos/internal/ctr"
	"cosmos/internal/enclave"
	"cosmos/internal/experiments"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// Results re-exports the simulator's metric bundle.
type Results = sim.Results

// RunSpec selects a simulation.
type RunSpec struct {
	// Workload is one of Workloads(): the eight graph algorithms (DFS,
	// BFS, GC, PR, TC, CC, SP, DC), the SPEC-like kernels (mcf, canneal,
	// omnetpp), or the ML models (MLP, AlexNet, ResNet, VGG, BERT,
	// Transformer, DLRM).
	Workload string
	// Design is one of Designs(): NP, MorphCtr, EMCC, Morph@L1,
	// COSMOS-DP, COSMOS-CP, COSMOS.
	Design string
	// Accesses caps the simulation length (default 1,000,000).
	Accesses uint64
	// Cores selects 4 (default) or 8 cores (Fig 15's scaling study).
	Cores int
	// GraphNodes / GraphDegree size the synthetic graph for graph
	// workloads (defaults reproduce the paper's thrashing regime).
	GraphNodes  int
	GraphDegree int
	// Seed fixes all randomness; equal specs give identical Results.
	Seed uint64
}

// Workloads lists every runnable workload name.
func Workloads() []string { return workloads.AllNames() }

// Designs lists every design point name.
func Designs() []string {
	return []string{"NP", "MorphCtr", "EMCC", "Morph@L1", "COSMOS-DP", "COSMOS-CP", "COSMOS", "RMCC"}
}

// Run simulates one workload on one design and returns the metrics.
func Run(spec RunSpec) (Results, error) {
	if spec.Accesses == 0 {
		spec.Accesses = 1_000_000
	}
	if spec.Cores == 0 {
		spec.Cores = 4
	}
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	design, err := secmem.DesignByName(spec.Design)
	if err != nil {
		return Results{}, err
	}
	gen, err := workloads.Build(spec.Workload, workloads.Options{
		Threads:     spec.Cores,
		Seed:        spec.Seed,
		GraphNodes:  spec.GraphNodes,
		GraphDegree: spec.GraphDegree,
	})
	if err != nil {
		return Results{}, err
	}
	cfg := sim.DefaultConfig()
	if spec.Cores == 8 {
		cfg = sim.EightCore()
	} else {
		cfg.Cores = spec.Cores
	}
	cfg.MC.Seed = spec.Seed
	cfg.MC.Params.Seed = spec.Seed
	s := sim.New(cfg, design)
	return s.Run(trace.Limit(gen, spec.Accesses), spec.Accesses), nil
}

// Compare runs the same workload under two designs and returns the speedup
// of b over a (cycles_a / cycles_b).
func Compare(workload, a, b string, accesses uint64) (float64, error) {
	ra, err := Run(RunSpec{Workload: workload, Design: a, Accesses: accesses})
	if err != nil {
		return 0, err
	}
	rb, err := Run(RunSpec{Workload: workload, Design: b, Accesses: accesses})
	if err != nil {
		return 0, err
	}
	if rb.Cycles == 0 {
		return 0, fmt.Errorf("cosmos: design %s executed no cycles", b)
	}
	return float64(ra.Cycles) / float64(rb.Cycles), nil
}

// Experiments lists the reproducible table/figure ids in paper order.
func Experiments() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// RunExperiment regenerates one paper table or figure. scale 1.0 is the
// full reproduction; smaller values trade fidelity for speed (0 = smoke).
func RunExperiment(id string, scale float64) (*stats.Table, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(experiments.NewLab(experiments.Scaled(scale))), nil
}

// SecureMemory is the functional AES-CTR + MAC + Merkle-tree protected
// memory (see internal/enclave): real encryption, real integrity
// verification, real replay detection.
type SecureMemory = enclave.Memory

// Line is one 64-byte protected block.
type Line = enclave.Line

// NewSecureMemory creates a protected memory of size bytes under a 16-byte
// AES key with MorphCtr counters.
func NewSecureMemory(size uint64, key []byte) (*SecureMemory, error) {
	return enclave.New(size, key, ctr.Morph())
}
