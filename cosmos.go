// Package cosmos is the public API of the COSMOS reproduction — the
// RL-enhanced locality-aware counter-cache optimization for secure memory
// from "COSMOS: RL-Enhanced Locality-Aware Counter Cache Optimization for
// Secure Memory" (MICRO 2025).
//
// The package offers three layers:
//
//   - Simulation: Run / RunContext execute a workload on a secure-memory
//     design point (non-protected, MorphCtr, EMCC-like, COSMOS variants)
//     over the paper's 4-core machine and return the full metric set (IPC,
//     CTR cache behaviour, DRAM traffic decomposition, SMAT).
//
//   - Experiments: Experiments, RunExperiment and RunExperimentContext
//     regenerate the paper's tables and figures at a chosen scale, with
//     optional parallelism, persistent result storage (campaign resume)
//     and progress reporting.
//
//   - Functional secure memory: NewSecureMemory exposes a bit-accurate
//     AES-CTR + MAC + Merkle-tree protected memory with real tamper and
//     replay detection, the substrate the timing model abstracts.
//
// Every simulation flows through one run orchestrator: identical specs are
// deduplicated and memoised, results are deterministic (equal specs give
// bit-identical Results regardless of concurrency or caching), and
// cancellation through a context lands mid-simulation within a bounded
// number of steps.
//
// Quickstart:
//
//	r, _ := cosmos.Run(cosmos.RunSpec{Workload: "DFS", Design: "COSMOS", Accesses: 1e6})
//	fmt.Println(r.IPC, r.CtrMissRate)
package cosmos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cosmos/internal/ctr"
	"cosmos/internal/enclave"
	"cosmos/internal/experiments"
	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/workloads"
)

// Results re-exports the simulator's metric bundle.
type Results = sim.Results

// RunSpec selects a simulation.
type RunSpec struct {
	// Workload is one of Workloads(): the eight graph algorithms (DFS,
	// BFS, GC, PR, TC, CC, SP, DC), the SPEC-like kernels (mcf, canneal,
	// omnetpp), or the ML models (MLP, AlexNet, ResNet, VGG, BERT,
	// Transformer, DLRM).
	Workload string
	// Design is one of Designs(): NP, MorphCtr, EMCC, Morph@L1,
	// COSMOS-DP, COSMOS-CP, COSMOS, RMCC.
	Design string
	// Accesses caps the simulation length (default 1,000,000).
	Accesses uint64
	// Cores selects 4 (default) or 8 cores (Fig 15's scaling study).
	Cores int
	// GraphNodes / GraphDegree size the synthetic graph for graph
	// workloads (defaults reproduce the paper's thrashing regime).
	GraphNodes  int
	GraphDegree int
	// Seed fixes all randomness; equal specs give identical Results.
	Seed uint64
}

// Workloads lists every runnable workload name. The order is stable across
// releases: graph algorithms first, then the SPEC-like kernels, then the ML
// models — the order tables and sweeps iterate in.
func Workloads() []string { return workloads.AllNames() }

// Designs lists every design point name, derived from the same registry
// that backs design resolution in Run — a design cannot appear here without
// being runnable, nor the reverse. The order is stable: baselines first
// (NP, MorphCtr, EMCC, Morph@L1), then the COSMOS variants (COSMOS-DP,
// COSMOS-CP, COSMOS), then the related-work point (RMCC).
func Designs() []string {
	all := secmem.AllDesigns()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}

// orchestrator is the package-level run orchestrator behind Run and
// RunContext: repeated calls with equal specs are memoised and concurrent
// duplicates coalesce onto one simulation.
var (
	orchOnce sync.Once
	orch     *runner.Orchestrator
)

func orchestrator() *runner.Orchestrator {
	orchOnce.Do(func() { orch = runner.New(runner.Options{}) })
	return orch
}

// Run simulates one workload on one design and returns the metrics. It is
// RunContext with a background context.
//
// Deprecated: use RunContext, which adds cooperative cancellation for the
// same spec and results. Run remains a thin wrapper and will keep working.
func Run(spec RunSpec) (Results, error) {
	return RunContext(context.Background(), spec)
}

// RunContext simulates one workload on one design under ctx: on
// cancellation the simulation stops within a bounded number of steps and
// the error wraps ctx.Err(). Identical specs — including across concurrent
// callers — execute one simulation and share its (bit-identical) Results.
func RunContext(ctx context.Context, spec RunSpec) (Results, error) {
	if spec.Accesses == 0 {
		spec.Accesses = 1_000_000
	}
	if spec.Cores == 0 {
		spec.Cores = 4
	}
	if spec.Seed == 0 {
		spec.Seed = 42
	}
	design, err := secmem.DesignByName(spec.Design)
	if err != nil {
		return Results{}, err
	}
	return orchestrator().Run(ctx, runner.Spec{
		Workload:    spec.Workload,
		Design:      design,
		Cores:       spec.Cores,
		Accesses:    spec.Accesses,
		GraphNodes:  spec.GraphNodes,
		GraphDegree: spec.GraphDegree,
		Seed:        spec.Seed,
	})
}

// Compare runs the same workload under two designs and returns the speedup
// of b over a (cycles_a / cycles_b).
func Compare(workload, a, b string, accesses uint64) (float64, error) {
	ra, err := Run(RunSpec{Workload: workload, Design: a, Accesses: accesses})
	if err != nil {
		return 0, err
	}
	rb, err := Run(RunSpec{Workload: workload, Design: b, Accesses: accesses})
	if err != nil {
		return 0, err
	}
	if rb.Cycles == 0 {
		return 0, fmt.Errorf("cosmos: design %s executed no cycles", b)
	}
	return float64(ra.Cycles) / float64(rb.Cycles), nil
}

// Experiments lists the reproducible table/figure ids in paper order.
func Experiments() []string {
	var out []string
	for _, e := range experiments.All() {
		out = append(out, e.ID)
	}
	return out
}

// RunUpdate reports one completed simulation request of an experiment
// campaign to the ExperimentOpts.Progress callback.
type RunUpdate struct {
	// Label identifies the run (workload, design and tweaks).
	Label string
	// Source says where the result came from: "executed", "memoised",
	// "restored" (from ResultsDir) or "deduplicated" (coalesced onto an
	// identical in-flight run).
	Source string
	// QueueWait / ExecTime are non-zero for executed runs only.
	QueueWait time.Duration
	ExecTime  time.Duration
	// Err is non-nil when this run failed (the campaign then drains and
	// RunExperimentContext returns the first such error).
	Err error
}

// ExperimentOpts configures RunExperimentContext.
type ExperimentOpts struct {
	// Scale sizes the campaign: 1.0 is the full reproduction, smaller
	// values trade fidelity for speed (0 = smoke scale).
	Scale float64
	// Workers bounds concurrent simulations (0 = number of CPUs).
	Workers int
	// ResultsDir, when non-empty, persists every executed simulation to
	// that directory and consults it first, so a killed campaign rerun
	// with the same directory executes only the missing cells.
	ResultsDir string
	// Progress, when non-nil, receives a RunUpdate per completed
	// simulation request. It may be called concurrently.
	Progress func(RunUpdate)
	// ParallelCores > 1 runs each simulation on the deterministic
	// epoch-barrier parallel engine with up to that many worker goroutines.
	// Results are bit-identical to serial runs — the knob trades wall-clock
	// for CPUs, never semantics — so results stored under one setting are
	// reused under any other.
	ParallelCores int
}

// RunExperiment regenerates one paper table or figure. scale 1.0 is the
// full reproduction; smaller values trade fidelity for speed (0 = smoke).
// It is RunExperimentContext with a background context and default options.
//
// Deprecated: use RunExperimentContext, which adds cancellation, worker
// bounds, persistent resume and progress reporting for the same output.
// RunExperiment remains a thin wrapper and will keep working.
func RunExperiment(id string, scale float64) (*stats.Table, error) {
	return RunExperimentContext(context.Background(), id, ExperimentOpts{Scale: scale})
}

// RunExperimentContext regenerates one paper table or figure under ctx.
// Simulation failures — a cancelled context, a bad workload, a panicking
// model component — surface as the returned error instead of a partial
// table.
func RunExperimentContext(ctx context.Context, id string, opts ExperimentOpts) (*stats.Table, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	lopts := []experiments.LabOption{experiments.WithContext(ctx)}
	if opts.Workers > 0 {
		lopts = append(lopts, experiments.WithWorkers(opts.Workers))
	}
	if opts.ParallelCores > 1 {
		lopts = append(lopts, experiments.WithParallelCores(opts.ParallelCores))
	}
	if opts.ResultsDir != "" {
		st, err := runner.OpenStore(opts.ResultsDir)
		if err != nil {
			return nil, err
		}
		lopts = append(lopts, experiments.WithStore(st))
	}
	if p := opts.Progress; p != nil {
		lopts = append(lopts, experiments.WithObserver(func(ev runner.Event) {
			p(RunUpdate{
				Label:     ev.Label,
				Source:    ev.Source.String(),
				QueueWait: ev.QueueWait,
				ExecTime:  ev.ExecTime,
				Err:       ev.Err,
			})
		}))
	}
	l := experiments.NewLab(experiments.Scaled(opts.Scale), lopts...)
	return e.Run(l)
}

// SecureMemory is the functional AES-CTR + MAC + Merkle-tree protected
// memory (see internal/enclave): real encryption, real integrity
// verification, real replay detection.
type SecureMemory = enclave.Memory

// Line is one 64-byte protected block.
type Line = enclave.Line

// NewSecureMemory creates a protected memory of size bytes under a 16-byte
// AES key with MorphCtr counters.
func NewSecureMemory(size uint64, key []byte) (*SecureMemory, error) {
	return enclave.New(size, key, ctr.Morph())
}
