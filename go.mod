module cosmos

go 1.22
