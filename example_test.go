package cosmos_test

import (
	"fmt"

	"cosmos"
)

// ExampleRun simulates a workload on the full COSMOS design and reads out
// the headline metrics.
func ExampleRun() {
	r, err := cosmos.Run(cosmos.RunSpec{
		Workload:   "mcf",
		Design:     "COSMOS",
		Accesses:   50_000,
		Seed:       7,
		GraphNodes: 50_000, // ignored for non-graph workloads
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Design, r.Workload, r.Accesses)
	fmt.Println(r.IPC > 0, r.CtrAccesses > 0)
	// Output:
	// COSMOS mcf 50000
	// true true
}

// ExampleCompare measures the security tax: how much faster the
// non-protected system runs than the MorphCtr baseline.
func ExampleCompare() {
	speedup, err := cosmos.Compare("canneal", "MorphCtr", "NP", 50_000)
	if err != nil {
		panic(err)
	}
	fmt.Println(speedup > 1.0)
	// Output:
	// true
}

// ExampleNewSecureMemory shows the functional layer: real AES-CTR
// encryption with tamper detection.
func ExampleNewSecureMemory() {
	mem, err := cosmos.NewSecureMemory(1<<16, []byte("0123456789abcdef"))
	if err != nil {
		panic(err)
	}
	var line cosmos.Line
	copy(line[:], "secret")
	mem.Write(0, line)

	got, _ := mem.Read(0)
	fmt.Println(string(got[:6]))

	mem.TamperCiphertext(0, func(l *cosmos.Line) { l[0] ^= 1 })
	_, err = mem.Read(0)
	fmt.Println(err != nil)
	// Output:
	// secret
	// true
}

// ExampleRunExperiment regenerates one of the paper's tables.
func ExampleRunExperiment() {
	table, err := cosmos.RunExperiment("tab4", 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(table.String()) > 0)
	// Output:
	// true
}
