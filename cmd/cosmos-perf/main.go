// Command cosmos-perf is the performance-observability harness: it measures
// the benchmark suite (per-design Step ns/op and allocs/op, trace-decode
// throughput, end-to-end campaign accesses/sec) with repeated interleaved
// samples, writes a versioned BENCH_<n>.json report stamped with the machine
// fingerprint, and statistically compares reports (median + Mann–Whitney U +
// noise threshold) into per-metric verdicts.
//
// Examples:
//
//	cosmos-perf -quick -out BENCH_7.json -seq 7 -history perf/HISTORY.jsonl
//	cosmos-perf -quick -baseline BENCH_6.json            # the CI ratchet
//	cosmos-perf -compare BENCH_6.json BENCH_7.json       # offline diff
//	cosmos-perf -quick -baseline BENCH_6.json -handicap 2  # ratchet self-test
//
// Exit status: 0 clean, 1 when the comparison finds a statistically
// significant regression, 2 on operational errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/perf"
	"cosmos/internal/stats"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "CI regime: 5 samples with small op counts (default regime is 10 larger samples)")
		samples   = flag.Int("samples", 0, "override samples per metric (0 = regime default)")
		stepOps   = flag.Int("step-ops", 0, "override timed Step calls per sample (0 = regime default)")
		decodeOps = flag.Int("decode-ops", 0, "override decode trace length (0 = regime default)")
		e2e       = flag.Bool("e2e", true, "include the end-to-end campaign benchmark")
		e2eScale  = flag.Float64("e2e-scale", 0, "experiment scale factor for the e2e benchmark (0 = smallest)")
		workers   = flag.Int("workers", 0, "campaign workers for the e2e benchmark (0 = GOMAXPROCS)")
		handicap  = flag.Float64("handicap", 0, "self-test knob: artificially slow every measurement by this factor (2 must fail a clean ratchet)")
		timeout   = cliflags.RegisterTimeout(flag.CommandLine)
		parCores  = cliflags.RegisterParallelCores(flag.CommandLine)

		out     = flag.String("out", "", "write the measured report to this file (BENCH_<n>.json)")
		seq     = flag.Int("seq", 0, "sequence number stamped into the report (the <n> of BENCH_<n>.json)")
		history = flag.String("history", "", "append a summary line to this trajectory file (perf/HISTORY.jsonl)")

		compare   = flag.Bool("compare", false, "compare two existing reports (args: base.json current.json) instead of measuring")
		baseline  = flag.String("baseline", "", "after measuring, ratchet the new report against this baseline report")
		alpha     = flag.Float64("alpha", 0.05, "significance level of the Mann–Whitney test")
		threshold = flag.Float64("threshold", 0.05, "minimum relative median delta to count as a real change (0.05 = 5%; use a loose value across machines)")
	)
	flag.Parse()
	opts := perf.CompareOpts{Alpha: *alpha, Threshold: *threshold}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "cosmos-perf: -compare needs exactly two report paths (base current)")
			os.Exit(2)
		}
		base, err := perf.ReadReport(flag.Arg(0))
		if err != nil {
			die(err)
		}
		cur, err := perf.ReadReport(flag.Arg(1))
		if err != nil {
			die(err)
		}
		os.Exit(verdict(base, cur, opts))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "cosmos-perf: unexpected arguments (did you mean -compare?):", flag.Args())
		os.Exit(2)
	}

	ctx, stopSignals := cliflags.SignalContext(*timeout)
	defer stopSignals()

	cfg := perf.DefaultConfig()
	if *quick {
		cfg = perf.QuickConfig()
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *stepOps > 0 {
		cfg.StepOps = *stepOps
	}
	if *decodeOps > 0 {
		cfg.DecodeOps = *decodeOps
	}
	cfg.E2E = *e2e
	cfg.E2EScale = *e2eScale
	cfg.Workers = *workers
	cfg.ParallelCores = *parCores
	cfg.Handicap = *handicap
	cfg.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cosmos-perf: "+format+"\n", args...)
	}

	fmt.Printf("environment: %s\n", perf.CollectFingerprint())
	start := time.Now()
	report, err := perf.RunSuite(ctx, cfg)
	if err != nil {
		die(err)
	}
	report.Seq = *seq
	fmt.Printf("suite done in %.1fs (%d samples per metric)\n", time.Since(start).Seconds(), cfg.Samples)
	printReport(report)

	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			die(err)
		}
		fmt.Println("report written to", *out)
	}
	if *history != "" {
		if err := perf.AppendHistory(*history, perf.HistoryEntryOf(report)); err != nil {
			die(err)
		}
		fmt.Println("trajectory appended to", *history)
	}
	if *baseline != "" {
		base, err := perf.ReadReport(*baseline)
		if err != nil {
			die(err)
		}
		os.Exit(verdict(base, report, opts))
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "cosmos-perf:", err)
	os.Exit(2)
}

// printReport renders the measured samples as a table.
func printReport(r *perf.Report) {
	t := stats.NewTable("measured suite", "metric", "unit", "median", "iqr", "samples")
	for _, m := range r.Metrics {
		t.Row(m.Name, m.Unit,
			fmt.Sprintf("%.4g", m.Median),
			fmt.Sprintf("%.3g", m.IQR),
			fmt.Sprintf("%d", len(m.Samples)))
	}
	t.Write(os.Stdout)
}

// verdict prints the delta table and returns the process exit code: 1 when
// any metric regressed significantly, 0 otherwise.
func verdict(base, cur *perf.Report, opts perf.CompareOpts) int {
	c := perf.Compare(base, cur, opts)
	for _, d := range c.FingerprintDiff {
		fmt.Println("warning: fingerprint mismatch —", d)
	}
	if len(c.FingerprintDiff) > 0 {
		fmt.Println("warning: wall-clock metrics only transfer between identical machines; use a loose -threshold")
	}
	c.Table().Write(os.Stdout)
	improved, regressed, indist := c.Counts()
	fmt.Printf("%d improved, %d regressed, %d indistinguishable\n", improved, regressed, indist)
	if c.Regressed() {
		fmt.Println("PERF RATCHET: FAIL")
		return 1
	}
	fmt.Println("PERF RATCHET: PASS")
	return 0
}
