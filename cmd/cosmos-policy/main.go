// Command cosmos-policy is the offline half of the train→freeze→deploy
// loop: it trains any policy kind on a transition log recorded by
// cosmos-sim -policy-log, freezes the result into a cosmos-policy-v1 file,
// and inspects existing policy files.
//
//	cosmos-sim -workload mcf -design COSMOS -accesses 2000000 -policy-log mcf.jsonl
//	cosmos-policy train -log mcf.jsonl -kind perceptron -role ctr -out mcf-ctr.json
//	cosmos-sim -workload DFS -design COSMOS -policy-frozen mcf-ctr.json
//	cosmos-policy show mcf-ctr.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/policytrain"
	"cosmos/internal/rl"
	"cosmos/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "train":
		train(os.Args[2:])
	case "show":
		show(os.Args[2:])
	case "list":
		cliflags.ListPolicies(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "cosmos-policy: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cosmos-policy train -log <transitions.jsonl> -kind <kind> -role <data|ctr> -out <policy.json> [-epochs N] [-seed N]
  cosmos-policy show <policy.json>
  cosmos-policy list`)
}

func train(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	var (
		logPath = fs.String("log", "", "transition log (JSONL from cosmos-sim -policy-log)")
		kind    = fs.String("kind", "", "policy kind to train ("+strings.Join(rl.PolicyKinds(), ", ")+")")
		role    = fs.String("role", "", "predictor role to train for: data | ctr")
		out     = fs.String("out", "", "output cosmos-policy-v1 file")
		epochs  = fs.Int("epochs", 1, "training passes over the log")
		seed    = fs.Uint64("seed", 1, "deterministic initialisation seed")
		states  = fs.Int("states", 0, "tabular Q-table states (0 = default)")
	)
	_ = fs.Parse(args)
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "cosmos-policy:", err)
		os.Exit(1)
	}
	if *logPath == "" || *kind == "" || *role == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	spec := rl.PolicySpec{Kind: *kind, States: *states}
	if err := spec.Validate(); err != nil {
		die(err)
	}
	p, st, err := policytrain.TrainFromLog(*logPath, spec, *role, *epochs, *seed)
	if err != nil {
		die(err)
	}
	if err := policytrain.FreezeToFile(*out, p, *role, *logPath, st); err != nil {
		die(err)
	}
	fmt.Printf("trained %s on %d %s transitions (%d epoch(s)): agreement %.1f%%, %d storage bits -> %s\n",
		*kind, st.Transitions, *role, st.Epochs, st.Agreement*100, p.StorageBits(), *out)
}

func show(args []string) {
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	sn, err := rl.LoadSnapshot(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-policy:", err)
		os.Exit(1)
	}
	p, err := rl.FromSnapshot(sn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-policy:", err)
		os.Exit(1)
	}
	t := stats.NewTable(args[0], "field", "value")
	t.Row("version", sn.Version)
	t.Row("kind", sn.Kind)
	if sn.Meta.Role != "" {
		t.Row("role", sn.Meta.Role)
	}
	if sn.Meta.TrainedOn != "" {
		t.Row("trained on", sn.Meta.TrainedOn)
	}
	if sn.Meta.Transitions > 0 {
		t.Row("transitions", sn.Meta.Transitions)
	}
	switch sn.Kind {
	case rl.KindTabular:
		t.Row("shape", fmt.Sprintf("%d states x %d actions", sn.Meta.States, sn.Meta.Actions))
		t.Row("alpha/gamma/epsilon", fmt.Sprintf("%g / %g / %g", sn.Meta.Alpha, sn.Meta.Gamma, sn.Meta.Epsilon))
	case rl.KindPerceptron:
		t.Row("shape", fmt.Sprintf("%d features x %d buckets, theta %d", sn.Meta.Features, sn.Meta.Buckets, sn.Meta.Theta))
	case rl.KindMLP:
		t.Row("shape", fmt.Sprintf("%d inputs x %d hidden", sn.Meta.Inputs, sn.Meta.Hidden))
	}
	t.Row("storage bits", p.StorageBits())
	t.Row("weight bytes", len(sn.Weights))
	t.Write(os.Stdout)
}
