// Command cosmos-trace inspects a workload's memory access stream without
// simulating a machine: footprint, read/write mix, per-region breakdown,
// stride distribution and line-reuse statistics. Useful for understanding
// why a workload behaves the way it does in the CTR cache.
//
//	cosmos-trace -workload DFS -accesses 500000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/memsys"
	"cosmos/internal/obs"
	"cosmos/internal/stats"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "DFS", "workload ("+strings.Join(workloads.AllNames(), ", ")+")")
		accesses = flag.Uint64("accesses", 500_000, "accesses to sample")
		nodes    = flag.Int("graph-nodes", 0, "graph vertices (0 = default)")
		degree   = flag.Int("graph-degree", 0, "graph degree (0 = default)")
		seed     = flag.Uint64("seed", 42, "seed")
		dump     = flag.Uint64("dump", 0, "print the first N raw accesses")
		export   = flag.String("export", "", "write the sampled accesses to a trace file (.trc or .trc.gz) instead of profiling")

		obsFlags = cliflags.RegisterObs(flag.CommandLine)
	)
	flag.Parse()

	logger, err := obsFlags.Logger("cosmos-trace")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-trace:", err)
		os.Exit(1)
	}
	die := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	if *accesses == 0 {
		die("validate flags", fmt.Errorf("-accesses must be positive: nothing to sample"))
	}

	// SIGINT/SIGTERM stop the sampling loop; the profile of the accesses
	// gathered so far still prints.
	ctx, stopSignals := cliflags.SignalContext(0)
	defer stopSignals()
	done := ctx.Done()

	gen, err := workloads.Build(*workload, workloads.Options{
		Threads: 4, Seed: *seed, GraphNodes: *nodes, GraphDegree: *degree,
	})
	if err != nil {
		die("build workload", err)
	}
	defer trace.CloseIfCloser(gen)

	var (
		reads, writes uint64
	)

	if obsFlags.Listen != "" {
		// The profiler's registry: live progress of the sampling loop. The
		// loop is single-writer; scrapes read the counters torn-read
		// tolerantly (see DESIGN.md §8).
		reg := telemetry.NewRegistry()
		sc := reg.Scope("trace")
		sc.Counter("reads", &reads)
		sc.Counter("writes", &writes)
		sc.CounterFunc("accesses_sampled", func() uint64 { return reads + writes })
		srv := obs.NewServer(obs.Config{Component: "cosmos-trace", Registry: reg, Logger: logger})
		if err := srv.Start(obsFlags.Listen); err != nil {
			die("observability plane", err)
		}
		logger.Info("observability plane listening", "addr", srv.URL())
		defer func() {
			sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(sdCtx)
		}()
	}

	if *export != "" {
		n, err := trace.WriteFile(*export, gen, *accesses)
		if err != nil {
			die("export trace", err)
		}
		fmt.Printf("wrote %d accesses of %s to %s\n", n, *workload, *export)
		return
	}

	var (
		lines        = map[uint64]uint64{} // line → touch count
		ctrBlocks    = map[uint64]bool{}
		perRegion    = map[uint16]uint64{}
		perThread    = map[uint8]uint64{}
		lastByThread = map[uint8]uint64{}
		seq, jumps   uint64
	)
sampling:
	for i := uint64(0); i < *accesses; i++ {
		if i&4095 == 0 {
			select {
			case <-done:
				logger.Warn("interrupted; profiling what was sampled", "accesses", i)
				break sampling
			default:
			}
		}
		a, ok := gen.Next()
		if !ok {
			break
		}
		if i < *dump {
			fmt.Println(a)
		}
		if a.Type == memsys.Write {
			writes++
		} else {
			reads++
		}
		line := a.Addr.Line()
		lines[line]++
		ctrBlocks[line/128] = true
		perRegion[a.Region]++
		perThread[a.Thread]++
		if last, ok := lastByThread[a.Thread]; ok {
			switch {
			case line == last || line == last+1:
				seq++
			default:
				jumps++
			}
		}
		lastByThread[a.Thread] = line
	}
	total := reads + writes
	if total == 0 {
		die("profile", fmt.Errorf("workload produced no accesses"))
	}

	reuse := uint64(0)
	maxTouch := uint64(0)
	for _, c := range lines {
		if c > 1 {
			reuse += c - 1
		}
		if c > maxTouch {
			maxTouch = c
		}
	}

	t := stats.NewTable(fmt.Sprintf("trace profile: %s", *workload), "metric", "value")
	t.Row("accesses", total)
	t.Row("reads / writes", fmt.Sprintf("%d / %d (%.1f%% writes)", reads, writes, 100*float64(writes)/float64(total)))
	t.Row("distinct lines", len(lines))
	t.Row("footprint", memsys.Bytes(uint64(len(lines))*memsys.LineSize))
	t.Row("distinct CTR blocks (1:128)", len(ctrBlocks))
	t.Row("ctr metadata footprint", memsys.Bytes(uint64(len(ctrBlocks))*memsys.LineSize))
	t.Row("line reuse fraction", stats.Pct(float64(reuse)/float64(total)))
	t.Row("hottest line touches", maxTouch)
	t.Row("sequential-step share", stats.Pct(float64(seq)/float64(seq+jumps)))
	t.Row("threads", len(perThread))
	t.Write(os.Stdout)

	type rc struct {
		region uint16
		count  uint64
	}
	var regions []rc
	for r, c := range perRegion {
		regions = append(regions, rc{r, c})
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].count > regions[j].count })
	rt := stats.NewTable("per-region access share", "region-sig", "accesses", "share")
	for _, r := range regions {
		rt.Row(r.region, r.count, stats.Pct(float64(r.count)/float64(total)))
	}
	rt.Write(os.Stdout)
}
