package main

// Distributed campaign modes. One cosmos-bench binary plays three roles:
//
//	cosmos-bench -serve :9090 -results-dir r -exp fig10   # coordinator
//	cosmos-bench -join http://host:9090                   # worker (any number)
//	cosmos-bench -exp fig10                               # plain single node
//
// The coordinator runs the ordinary campaign loop, but its orchestrator
// delegates every leader execution to the lease fabric (internal/coord)
// instead of simulating locally; workers pull leases, simulate through the
// same runner path, and stream results back. Determinism and content
// addressing make the distributed table byte-identical to a single-node
// run of the same experiments.

import (
	"context"
	"errors"
	"log/slog"
	"net/url"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/coord"
	"cosmos/internal/obs"
	"cosmos/internal/runner"
)

// Exit codes, stable for supervisors and CI:
//
//	0  campaign (or worker drain) completed
//	1  campaign error: an experiment failed, a cell errored
//	2  usage: bad flags or flag combinations (flag package parse errors too)
//	3  lost coordinator: a worker exhausted its reconnect budget
const (
	exitOK              = 0
	exitCampaign        = 1
	exitUsage           = 2
	exitLostCoordinator = 3
)

// joinCampaign runs the worker loop until the campaign ends, the process is
// signalled (graceful drain), or the coordinator stays unreachable.
func joinCampaign(ctx context.Context, logger *slog.Logger, obsFlags *cliflags.Obs, cf *cliflags.Coord, parallel int) int {
	if _, err := url.Parse(cf.Join); err != nil {
		logger.Error("bad -join URL", "err", err)
		return exitUsage
	}
	w, err := coord.NewWorker(coord.WorkerConfig{
		Addr:            cf.Join,
		Name:            cf.Name(),
		Concurrency:     parallel,
		Logger:          logger,
		PollInterval:    cf.PollIvl,
		ReconnectBudget: cf.Reconnect,
		Orchestrator:    runner.New(runner.Options{Workers: parallel}),
	})
	if err != nil {
		logger.Error("worker setup", "err", err)
		return exitUsage
	}

	// The worker serves its own observability plane when asked: /healthz is
	// liveness, /readyz flips once the coordinator has answered.
	if obsFlags.Listen != "" {
		srv := obs.NewServer(obs.Config{
			Component: "cosmos-bench-worker",
			Logger:    logger,
			Ready:     w.Ready,
		})
		if err := srv.Start(obsFlags.Listen); err != nil {
			logger.Error("observability plane", "err", err)
			return exitCampaign
		}
		logger.Info("observability plane listening", "addr", srv.URL())
		defer func() {
			sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(sdCtx)
		}()
	}

	logger.Info("joining campaign", "coordinator", cf.Join, "worker", cf.Name(), "concurrency", parallel)
	err = w.Run(ctx)
	executed, uploaded, dups, fenced, released := w.Stats()
	logger.Info("worker done",
		"executed", executed, "uploaded", uploaded, "dups", dups,
		"fenced", fenced, "released", released)
	switch {
	case errors.Is(err, coord.ErrLostCoordinator):
		logger.Error("lost coordinator", "err", err)
		return exitLostCoordinator
	case err != nil:
		logger.Error("worker failed", "err", err)
		return exitCampaign
	}
	return exitOK
}

// newCoordinator builds, recovers and logs the campaign coordinator over
// the (required) results store.
func newCoordinator(store *runner.Store, ttl time.Duration, logger *slog.Logger) (*coord.Coordinator, error) {
	c, err := coord.New(coord.Config{Store: store, TTL: ttl, Logger: logger})
	if err != nil {
		return nil, err
	}
	if err := c.Recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// serveGrace is how long the coordinator lingers after closing the fabric
// so every polling worker observes the 410 and exits 0 instead of hitting
// a dead listener: a few poll intervals, clamped to [1s, 3s].
func serveGrace(cf *cliflags.Coord) time.Duration {
	g := 4 * cf.PollIvl
	if g < time.Second {
		g = time.Second
	}
	if g > 3*time.Second {
		g = 3 * time.Second
	}
	return g
}

// finishServe closes the campaign fabric: pending lease polls get 410 so
// workers drain with exit 0, and the final fabric summary (the CI smoke
// greps re_leased here) lands in the log. The grace sleep outlives one
// worker poll interval so the fleet actually observes the 410 before the
// listener goes away with the process.
func finishServe(c *coord.Coordinator, logger *slog.Logger, grace time.Duration) {
	st := c.Status()
	c.Close()
	logger.Info("campaign fabric done",
		"completed", st.Completed,
		"re_leased", st.ReLeases,
		"expired", st.Expired,
		"released", st.Released,
		"duplicates", st.Duplicates,
		"orphans", st.Orphans,
		"workers", len(st.Workers))
	time.Sleep(grace)
}
