// Command cosmos-bench regenerates the paper's tables and figures.
//
//	cosmos-bench -exp fig10            # one experiment at full scale
//	cosmos-bench -exp all -scale 0.25  # everything, quarter scale
//	cosmos-bench -list                 # available experiment ids
//
// Runs are memoised within one invocation, so composite sweeps (fig10-14
// share the same simulations) cost each configuration once.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cosmos/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmos-bench: ")

	var (
		exp   = flag.String("exp", "all", "experiment id (fig2..fig17, tab1..tab4, abl-*, all)")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full reproduction, 0 = smoke)")
		csv   = flag.Bool("csv", false, "emit CSV")
		out   = flag.String("out", "", "also write each experiment as <out>/<id>.csv")
		par   = flag.Int("parallel", runtime.NumCPU(), "workers for the evaluation-matrix prewarm (-exp all)")
	)
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	lab := experiments.NewLab(experiments.Scaled(*scale))

	run := func(e experiments.Experiment) {
		start := time.Now()
		t := e.Run(lab)
		if *out != "" {
			path := filepath.Join(*out, e.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		if *csv {
			fmt.Printf("# %s: %s\n", e.ID, e.Title)
			fmt.Print(t.CSV())
		} else {
			t.Write(os.Stdout)
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	if *exp == "all" {
		if *par > 1 {
			start := time.Now()
			experiments.Prewarm(lab, *par)
			fmt.Printf("(prewarmed evaluation matrix with %d workers in %.1fs)\n\n", *par, time.Since(start).Seconds())
		}
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		log.Fatal(err)
	}
	run(e)
}
