// Command cosmos-bench regenerates the paper's tables and figures.
//
//	cosmos-bench -exp fig10            # one experiment at full scale
//	cosmos-bench -exp all -scale 0.25  # everything, quarter scale
//	cosmos-bench -list                 # available experiment ids
//
// Runs are memoised within one invocation, so composite sweeps (fig10-14
// share the same simulations) cost each configuration once. With
// -results-dir every completed simulation is also persisted to disk, so an
// interrupted campaign rerun with the same directory executes only the
// missing cells. SIGINT/SIGTERM (and -timeout) cancel mid-simulation and
// the run drains gracefully, keeping everything finished so far.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"cosmos/internal/experiments"
	"cosmos/internal/runner"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	log.SetFlags(0)
	log.SetPrefix("cosmos-bench: ")

	var (
		exp     = flag.String("exp", "all", "experiment id (fig2..fig17, tab1..tab4, abl-*, all)")
		list    = flag.Bool("list", false, "print the available experiment ids and exit")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full reproduction, 0 = smoke)")
		csv     = flag.Bool("csv", false, "emit CSV")
		out     = flag.String("out", "", "also write each experiment as <out>/<id>.csv")
		par     = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations (worker pool size)")
		results = flag.String("results-dir", "", "persist completed simulations here and resume from it on rerun")
		timeout = flag.Duration("timeout", 0, "abort the campaign after this duration (0 = none)")

		statsOut   = flag.String("stats-out", "", "write per-interval metric time-series, one <workload>_<design>.jsonl (or .csv with -stats-csv) per simulation, into this directory")
		statsIvl   = flag.Uint64("stats-interval", 100_000, "sampling interval in accesses for -stats-out")
		statsCSV   = flag.Bool("stats-csv", false, "emit -stats-out time-series as CSV instead of JSONL")
		traceOut   = flag.String("trace-out", "", "write Chrome trace_event JSON, one <workload>_<design>.trace.json per simulation, into this directory")
		traceLimit = flag.Int("trace-limit", 0, "max trace slices recorded per simulation (0 = default cap)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	// First SIGINT/SIGTERM cancels the campaign context: in-flight
	// simulations stop within sim.CancelCheckEvery steps, completed cells
	// stay persisted, and the summary below still prints. A second signal
	// kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Print(err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Print(err)
			return 1
		}
	}

	lopts := []experiments.LabOption{
		experiments.WithContext(ctx),
		experiments.WithWorkers(*par),
	}
	if *results != "" {
		st, err := runner.OpenStore(*results)
		if err != nil {
			log.Print(err)
			return 1
		}
		if n := st.Len(); n > 0 {
			log.Printf("results dir %s holds %d completed runs; resuming", st.Dir(), n)
		}
		lopts = append(lopts, experiments.WithStore(st))
	}
	lab := experiments.NewLab(experiments.Scaled(*scale), lopts...)
	lab.Instrument = instrumentHook(*statsOut, *statsIvl, *statsCSV, *traceOut, *traceLimit)

	code := 0
	// The summary prints on every exit path — including interrupts — so a
	// resumed campaign (and the CI smoke check) can assert how much work
	// actually ran versus came from the results dir.
	defer func() {
		st := lab.Orchestrator().Stats()
		fmt.Printf("executed %d simulations (%d restored from results dir, %d memoised, %d deduplicated, %d failed)\n",
			st.Executed, st.Restored, st.Memoised, st.Deduplicated, st.Failed)
		if st.Executed > 0 {
			fmt.Printf("simulation wall time %.1fs, worker queue wait %.1fs\n",
				st.ExecTime.Seconds(), st.QueueWait.Seconds())
		}
	}()

	runExp := func(e experiments.Experiment) bool {
		start := time.Now()
		t, err := e.Run(lab)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				log.Printf("%s: campaign interrupted: %v", e.ID, err)
			} else {
				log.Printf("%s: %v", e.ID, err)
			}
			code = 1
			return false
		}
		if *out != "" {
			path := filepath.Join(*out, e.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Print(err)
				code = 1
				return false
			}
		}
		if *csv {
			fmt.Printf("# %s: %s\n", e.ID, e.Title)
			fmt.Print(t.CSV())
		} else {
			t.Write(os.Stdout)
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
		return true
	}

	if *exp == "all" {
		if *par > 1 {
			start := time.Now()
			if err := experiments.Prewarm(lab); err != nil {
				log.Printf("prewarm: %v", err)
				return 1
			}
			fmt.Printf("(prewarmed evaluation matrix with %d workers in %.1fs)\n\n", *par, time.Since(start).Seconds())
		}
		for _, e := range experiments.All() {
			if !runExp(e) {
				break
			}
		}
		return code
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		log.Print(err)
		return 1
	}
	runExp(e)
	return code
}

// instrumentHook builds the Lab.Instrument callback attaching telemetry to
// every simulation the lab executes. Returns nil when no telemetry flag is
// set, keeping the uninstrumented path identical to before.
func instrumentHook(statsDir string, interval uint64, statsCSV bool, traceDir string, traceLimit int) func(string, *sim.System) func() {
	if statsDir == "" && traceDir == "" {
		return nil
	}
	for _, dir := range []string{statsDir, traceDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}
	return func(label string, s *sim.System) func() {
		reg := telemetry.NewRegistry()
		s.RegisterMetrics(reg.Root())

		var cleanups []func()
		if statsDir != "" {
			ext := ".jsonl"
			if statsCSV {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(statsDir, label+ext))
			if err != nil {
				log.Fatal(err)
			}
			cfg := telemetry.SamplerConfig{Interval: interval}
			if statsCSV {
				cfg.CSV = f
			} else {
				cfg.JSONL = f
			}
			sp, err := telemetry.NewSampler(reg, cfg)
			if err != nil {
				log.Fatal(err)
			}
			s.AttachSampler(sp)
			cleanups = append(cleanups, func() {
				if err := sp.Err(); err != nil {
					log.Printf("stats sink %s: %v", label, err)
				}
				f.Close()
			})
		}
		if traceDir != "" {
			tr := telemetry.NewTracer(traceLimit)
			s.AttachTracer(tr)
			cleanups = append(cleanups, func() {
				f, err := os.Create(filepath.Join(traceDir, label+".trace.json"))
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				if err := tr.WriteJSON(f); err != nil {
					log.Printf("trace sink %s: %v", label, err)
				}
			})
		}
		return func() {
			for _, c := range cleanups {
				c()
			}
		}
	}
}
