// Command cosmos-bench regenerates the paper's tables and figures.
//
//	cosmos-bench -exp fig10            # one experiment at full scale
//	cosmos-bench -exp all -scale 0.25  # everything, quarter scale
//	cosmos-bench -list                 # available experiment ids
//
// Runs are memoised within one invocation, so composite sweeps (fig10-14
// share the same simulations) cost each configuration once.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"cosmos/internal/experiments"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmos-bench: ")

	var (
		exp   = flag.String("exp", "all", "experiment id (fig2..fig17, tab1..tab4, abl-*, all)")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full reproduction, 0 = smoke)")
		csv   = flag.Bool("csv", false, "emit CSV")
		out   = flag.String("out", "", "also write each experiment as <out>/<id>.csv")
		par   = flag.Int("parallel", runtime.NumCPU(), "workers for the evaluation-matrix prewarm (-exp all)")

		statsOut   = flag.String("stats-out", "", "write per-interval metric time-series, one <workload>_<design>.jsonl (or .csv with -stats-csv) per simulation, into this directory")
		statsIvl   = flag.Uint64("stats-interval", 100_000, "sampling interval in accesses for -stats-out")
		statsCSV   = flag.Bool("stats-csv", false, "emit -stats-out time-series as CSV instead of JSONL")
		traceOut   = flag.String("trace-out", "", "write Chrome trace_event JSON, one <workload>_<design>.trace.json per simulation, into this directory")
		traceLimit = flag.Int("trace-limit", 0, "max trace slices recorded per simulation (0 = default cap)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	lab := experiments.NewLab(experiments.Scaled(*scale))
	lab.Instrument = instrumentHook(*statsOut, *statsIvl, *statsCSV, *traceOut, *traceLimit)

	run := func(e experiments.Experiment) {
		start := time.Now()
		t := e.Run(lab)
		if *out != "" {
			path := filepath.Join(*out, e.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		if *csv {
			fmt.Printf("# %s: %s\n", e.ID, e.Title)
			fmt.Print(t.CSV())
		} else {
			t.Write(os.Stdout)
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}

	if *exp == "all" {
		if *par > 1 {
			start := time.Now()
			experiments.Prewarm(lab, *par)
			fmt.Printf("(prewarmed evaluation matrix with %d workers in %.1fs)\n\n", *par, time.Since(start).Seconds())
		}
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByID(*exp)
	if err != nil {
		log.Fatal(err)
	}
	run(e)
}

// instrumentHook builds the Lab.Instrument callback attaching telemetry to
// every simulation the lab executes. Returns nil when no telemetry flag is
// set, keeping the uninstrumented path identical to before.
func instrumentHook(statsDir string, interval uint64, statsCSV bool, traceDir string, traceLimit int) func(string, *sim.System) func() {
	if statsDir == "" && traceDir == "" {
		return nil
	}
	for _, dir := range []string{statsDir, traceDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}
	return func(label string, s *sim.System) func() {
		reg := telemetry.NewRegistry()
		s.RegisterMetrics(reg.Root())

		var cleanups []func()
		if statsDir != "" {
			ext := ".jsonl"
			if statsCSV {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(statsDir, label+ext))
			if err != nil {
				log.Fatal(err)
			}
			cfg := telemetry.SamplerConfig{Interval: interval}
			if statsCSV {
				cfg.CSV = f
			} else {
				cfg.JSONL = f
			}
			sp, err := telemetry.NewSampler(reg, cfg)
			if err != nil {
				log.Fatal(err)
			}
			s.AttachSampler(sp)
			cleanups = append(cleanups, func() {
				if err := sp.Err(); err != nil {
					log.Printf("stats sink %s: %v", label, err)
				}
				f.Close()
			})
		}
		if traceDir != "" {
			tr := telemetry.NewTracer(traceLimit)
			s.AttachTracer(tr)
			cleanups = append(cleanups, func() {
				f, err := os.Create(filepath.Join(traceDir, label+".trace.json"))
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				if err := tr.WriteJSON(f); err != nil {
					log.Printf("trace sink %s: %v", label, err)
				}
			})
		}
		return func() {
			for _, c := range cleanups {
				c()
			}
		}
	}
}
