// Command cosmos-bench regenerates the paper's tables and figures.
//
//	cosmos-bench -exp fig10            # one experiment at full scale
//	cosmos-bench -exp all -scale 0.25  # everything, quarter scale
//	cosmos-bench -list                 # available experiment ids
//
// Runs are memoised within one invocation, so composite sweeps (fig10-14
// share the same simulations) cost each configuration once. With
// -results-dir every completed simulation is also persisted to disk, so an
// interrupted campaign rerun with the same directory executes only the
// missing cells. SIGINT/SIGTERM (and -timeout) cancel mid-simulation and
// the run drains gracefully, keeping everything finished so far.
//
// With -listen the campaign serves its live observability plane (see
// DESIGN.md §8): /metrics (Prometheus), /runs (per-cell campaign state),
// /events (SSE lifecycle + sampler stream), /healthz, /readyz, /buildz and
// /debug/pprof.
//
// Distributed campaigns (see DESIGN.md §14): -serve turns the process into
// the campaign coordinator (lease-based work queue on the observability
// plane address), -join turns it into a worker pulling leases from a
// coordinator. Determinism makes the distributed table byte-identical to a
// single-node run.
//
// Exit codes: 0 success, 1 campaign error, 2 usage, 3 lost coordinator.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/coord"
	"cosmos/internal/experiments"
	"cosmos/internal/obs"
	"cosmos/internal/runner"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
	"cosmos/internal/watch"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig2..fig17, tab1..tab4, abl-*, all)")
		list    = flag.Bool("list", false, "print the available experiment ids and exit")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full reproduction, 0 = smoke)")
		csv     = flag.Bool("csv", false, "emit CSV")
		jsonSum = flag.Bool("json", false, "emit a machine-readable campaign summary (run counts, wall-time phase breakdown, accesses/sec) as JSON on exit")
		out     = flag.String("out", "", "also write each experiment as <out>/<id>.csv")
		par     = flag.Int("parallel", runtime.NumCPU(), "concurrent simulations (worker pool size)")
		results = flag.String("results-dir", "", "persist completed simulations here and resume from it on rerun")

		timeout    = cliflags.RegisterTimeout(flag.CommandLine)
		faults     = cliflags.RegisterFault(flag.CommandLine)
		obsFlags   = cliflags.RegisterObs(flag.CommandLine)
		parCores   = cliflags.RegisterParallelCores(flag.CommandLine)
		policy     = cliflags.RegisterPolicy(flag.CommandLine)
		spanFlags  = cliflags.RegisterSpans(flag.CommandLine)
		coordFlags = cliflags.RegisterCoord(flag.CommandLine)

		statsOut   = flag.String("stats-out", "", "write per-interval metric time-series, one <workload>_<design>.jsonl (or .csv with -stats-csv) per simulation, into this directory")
		statsIvl   = flag.Uint64("stats-interval", 100_000, "sampling interval in accesses for -stats-out")
		statsCSV   = flag.Bool("stats-csv", false, "emit -stats-out time-series as CSV instead of JSONL")
		traceOut   = flag.String("trace-out", "", "write Chrome trace_event JSON, one <workload>_<design>.trace.json per simulation, into this directory")
		traceLimit = flag.Int("trace-limit", 0, "max trace slices recorded per simulation (0 = default cap)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	)
	flag.Parse()

	logger, err := obsFlags.Logger("cosmos-bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-bench:", err)
		return exitUsage
	}

	if coordFlags.Serve != "" && coordFlags.Join != "" {
		logger.Error("-serve and -join are mutually exclusive")
		return exitUsage
	}
	if coordFlags.Serve != "" {
		if *results == "" {
			logger.Error("-serve requires -results-dir (the coordinator persists results and its journal there)")
			return exitUsage
		}
		// The serve address IS the observability plane: the lease fabric
		// mounts under /coord/* next to /metrics and /runs.
		obsFlags.Listen = coordFlags.Serve
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if policy.List {
		cliflags.ListPolicies(os.Stdout)
		return 0
	}
	if policy.Log != "" {
		logger.Error("transition logging is per-simulation; record with cosmos-sim -policy-log instead")
		return exitUsage
	}
	dataPolicy, ctrPolicy, err := policy.Specs()
	if err != nil {
		logger.Error("policy flags", "err", err)
		return exitUsage
	}

	// First SIGINT/SIGTERM cancels the campaign context: in-flight
	// simulations stop within sim.CancelCheckEvery steps, completed cells
	// stay persisted, and the summary below still prints. A second signal
	// kills the process the usual way.
	ctx, stop := cliflags.SignalContext(*timeout)
	defer stop()

	// Worker mode: no experiments, no table — just the lease loop.
	if coordFlags.Join != "" {
		return joinCampaign(ctx, logger, obsFlags, coordFlags, *par)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error("cpuprofile", "err", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			logger.Error("create output dir", "err", err)
			return 1
		}
	}

	// The run table drives the progress/ETA line on every campaign and the
	// /runs endpoint when the plane is listening; the broker exists only
	// with -listen (a nil broker publishes nothing).
	var broker *obs.Broker
	if obsFlags.Listen != "" {
		broker = obs.NewBroker()
	}
	table := obs.NewRunTable(*par, broker)

	// The campaign-level phase accumulator: every simulation's attributed
	// wall time (decode / step / store / report) and access count merge into
	// it, feeding the live rate in progress lines, /runs snapshots, the
	// cosmos_perf_* metric families and the exit summary.
	phases := telemetry.NewPhases()
	table.AttachPhases(phases)

	lopts := []experiments.LabOption{
		experiments.WithContext(ctx),
		experiments.WithWorkers(*par),
		experiments.WithLifecycle(func(t runner.Transition) {
			table.Observe(t)
			if t.Phase != runner.PhaseDone || t.Source == runner.SourceDeduplicated {
				return
			}
			done, total, running := table.Progress()
			args := []any{
				"cell", t.Label,
				"source", t.Source.String(),
				"done", done, "total", total, "running", running,
			}
			if t.Source == runner.SourceExecuted {
				args = append(args, "exec_time", t.ExecTime.Round(time.Millisecond))
			}
			if t.Err != nil {
				args = append(args, "err", t.Err)
			}
			if eta, ok := table.ETA(); ok {
				args = append(args, "eta", eta.Round(time.Second))
			}
			if rate := phases.Rate(); rate > 0 {
				args = append(args, "rate", fmt.Sprintf("%.3g/s", rate))
			}
			logger.Info("progress", args...)
		}),
	}
	if faultCfg := faults.Config(); faultCfg != nil {
		if err := faultCfg.Validate(); err != nil {
			logger.Error("fault config", "err", err)
			return exitUsage
		}
		lopts = append(lopts, experiments.WithFaults(faultCfg))
	}
	if *parCores > 1 {
		lopts = append(lopts, experiments.WithParallelCores(*parCores))
	}
	if dataPolicy != nil || ctrPolicy != nil {
		lopts = append(lopts, experiments.WithPolicy(dataPolicy, ctrPolicy))
	}
	var store *runner.Store
	if *results != "" {
		store, err = runner.OpenStore(*results)
		if err != nil {
			logger.Error("open results dir", "err", err)
			return 1
		}
		if n := store.Len(); n > 0 {
			logger.Info("resuming campaign", "results_dir", store.Dir(), "completed_runs", n)
		}
		lopts = append(lopts, experiments.WithStore(store))
	}
	lab := experiments.NewLab(experiments.Scaled(*scale), lopts...)
	lab.Orchestrator().Phases = phases

	// Coordinator mode: leader executions go to the lease fabric instead of
	// local simulation. The orchestrator keeps its store-first lookup, memo
	// and singleflight, so resumes and composite figures still dedup.
	var coordinator *coord.Coordinator
	if coordFlags.Serve != "" {
		coordinator, err = newCoordinator(store, coordFlags.LeaseTTL, logger)
		if err != nil {
			logger.Error("coordinator setup", "err", err)
			return exitCampaign
		}
		lab.Orchestrator().Executor = coordinator
	}

	// With the plane up, per-run span recorders and watchdogs register into
	// hubs so /spans and /phases carry every executing cell.
	var spanHub *obs.SpanHub
	var watchHub *obs.WatchHub
	if obsFlags.Listen != "" {
		if spanFlags.Enabled() {
			spanHub = obs.NewSpanHub()
		}
		if spanFlags.Watch {
			watchHub = obs.NewWatchHub()
		}
	}
	lab.Instrument = instrumentHook(logger, *statsOut, *statsIvl, *statsCSV, *traceOut, *traceLimit,
		broker, spanFlags, spanHub, watchHub)

	if obsFlags.Listen != "" {
		reg := telemetry.NewRegistry()
		lab.Orchestrator().RegisterMetrics(reg.Root())
		phases.RegisterMetrics(reg.Root().Scope("perf"))
		cfg := obs.Config{
			Component: "cosmos-bench",
			Registry:  reg,
			Runs:      table,
			Events:    broker,
			Spans:     spanHub,
			Watch:     watchHub,
			Logger:    logger,
		}
		if coordinator != nil {
			coordinator.RegisterMetrics(reg)
			cfg.Component = "cosmos-bench-coordinator"
			cfg.Ready = coordinator.Ready
			cfg.Coord = func() any { return coordinator.Status() }
			cfg.Attach = coordinator.Mount
		}
		srv := obs.NewServer(cfg)
		if err := srv.Start(obsFlags.Listen); err != nil {
			logger.Error("observability plane", "err", err)
			return exitCampaign
		}
		logger.Info("observability plane listening", "addr", srv.URL())
		defer func() {
			sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(sdCtx); err != nil {
				logger.Warn("observability plane shutdown", "err", err)
			}
		}()
	}

	code := 0
	// The summary prints on every exit path — including interrupts — so a
	// resumed campaign (and the CI smoke check) can assert how much work
	// actually ran versus came from the results dir.
	defer func() {
		st := lab.Orchestrator().Stats()
		fmt.Printf("executed %d simulations (%d restored from results dir, %d memoised, %d deduplicated, %d failed)\n",
			st.Executed, st.Restored, st.Memoised, st.Deduplicated, st.Failed)
		if st.Executed > 0 {
			fmt.Printf("simulation wall time %.1fs, worker queue wait %.1fs\n",
				st.ExecTime.Seconds(), st.QueueWait.Seconds())
		}
		pb := phases.Breakdown()
		if pb.Accesses > 0 {
			fmt.Printf("campaign wall %.1fs: decode %.1fs, step %.1fs, store %.1fs, report %.1fs — %d simulated accesses (%.3g/s)\n",
				pb.WallMS/1000, pb.DecodeMS/1000, pb.StepMS/1000, pb.StoreMS/1000, pb.ReportMS/1000,
				pb.Accesses, pb.AccessesPerSec)
		}
		if *jsonSum {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				runner.Stats
				Perf telemetry.PhaseBreakdown
			}{st, pb}); err != nil {
				logger.Error("encode campaign summary", "err", err)
			}
		}
		if store != nil {
			hits, misses, corrupt := store.Counters()
			logger.Info("result store summary",
				"hits", hits, "misses", misses, "corrupt_recomputed", corrupt,
				"memo_hits", st.Memoised)
		}
	}()

	runExp := func(e experiments.Experiment) bool {
		start := time.Now()
		t, err := e.Run(lab)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				logger.Warn("campaign interrupted", "exp", e.ID, "err", err)
			} else {
				logger.Error("experiment failed", "exp", e.ID, "err", err)
			}
			code = 1
			return false
		}
		if *out != "" {
			path := filepath.Join(*out, e.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				logger.Error("write csv", "path", path, "err", err)
				code = 1
				return false
			}
		}
		if *csv {
			fmt.Printf("# %s: %s\n", e.ID, e.Title)
			fmt.Print(t.CSV())
		} else {
			t.Write(os.Stdout)
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
		return true
	}

	// The prewarm pass floods the orchestrator with the whole evaluation
	// matrix at once. A coordinator always wants that, whatever -exp and
	// -parallel say: the figure generators render cells serially, and only
	// a full lease queue lets the worker fleet actually run in parallel
	// (delegated cells don't occupy local worker slots).
	if (*par > 1 && *exp == "all") || coordinator != nil {
		start := time.Now()
		if err := experiments.Prewarm(lab); err != nil {
			logger.Error("prewarm failed", "err", err)
			if coordinator != nil {
				finishServe(coordinator, logger, serveGrace(coordFlags))
			}
			return exitCampaign
		}
		fmt.Printf("(prewarmed evaluation matrix with %d workers in %.1fs)\n\n", *par, time.Since(start).Seconds())
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			if !runExp(e) {
				break
			}
		}
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			logger.Error("unknown experiment", "err", err)
			return exitUsage
		}
		runExp(e)
	}
	if coordinator != nil {
		finishServe(coordinator, logger, serveGrace(coordFlags))
	}
	return code
}

// instrumentHook builds the Lab.Instrument callback attaching telemetry to
// every simulation the lab executes: file sinks for -stats-out/-trace-out,
// a sampler feeding each run's interval snapshots into the /events stream
// when the observability plane is up, a span recorder per run when
// -span-sample is set, and an online watchdog per run when -watch is set.
// Returns nil when nothing is enabled, keeping the uninstrumented path
// identical to before.
func instrumentHook(logger *slog.Logger, statsDir string, interval uint64, statsCSV bool, traceDir string, traceLimit int,
	broker *obs.Broker, spans *cliflags.Spans, spanHub *obs.SpanHub, watchHub *obs.WatchHub) func(string, *sim.System) func() {
	if statsDir == "" && traceDir == "" && broker == nil && !spans.Enabled() && !spans.Watch {
		return nil
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	for _, dir := range []string{statsDir, traceDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal("create telemetry dir", err)
			}
		}
	}
	return func(label string, s *sim.System) func() {
		reg := telemetry.NewRegistry()
		s.RegisterMetrics(reg.Root())
		if in := s.Faults(); in != nil && broker != nil {
			in.Notify = broker.FaultNotifier(label)
		}
		if rec := spans.Recorder(); rec != nil {
			s.AttachSpans(rec)
			rec.RegisterMetrics(reg.Root().Scope("span"))
			if spanHub != nil {
				spanHub.Register(label, rec)
			}
		}
		var dog *watch.Dog
		if spans.Watch {
			dog = watch.New(reg, watch.Config{
				Notify: obs.WatchNotifier(logger, broker, label),
			})
			dog.RegisterMetrics(reg.Root().Scope("watch"))
			if watchHub != nil {
				watchHub.Register(label, dog)
			}
		}

		var cleanups []func()
		if statsDir != "" || broker != nil || dog != nil {
			var cfg telemetry.SamplerConfig
			cfg.Interval = interval
			if dog != nil {
				cfg.Observer = dog.ObserveRow
			}
			var f *os.File
			if statsDir != "" {
				ext := ".jsonl"
				if statsCSV {
					ext = ".csv"
				}
				var err error
				f, err = os.Create(filepath.Join(statsDir, label+ext))
				if err != nil {
					fatal("create stats sink", err)
				}
				if statsCSV {
					cfg.CSV = f
				} else {
					cfg.JSONL = f
				}
			}
			if broker != nil {
				sink := broker.SampleWriter(label)
				if cfg.JSONL != nil {
					cfg.JSONL = io.MultiWriter(cfg.JSONL, sink)
				} else {
					cfg.JSONL = sink
				}
			}
			sp, err := telemetry.NewSampler(reg, cfg)
			if err != nil {
				fatal("build sampler", err)
			}
			s.AttachSampler(sp)
			cleanups = append(cleanups, func() {
				if err := sp.Err(); err != nil {
					logger.Warn("stats sink", "run", label, "err", err)
				}
				if f != nil {
					f.Close()
				}
			})
		}
		if traceDir != "" {
			tr := telemetry.NewTracer(traceLimit)
			s.AttachTracer(tr)
			cleanups = append(cleanups, func() {
				f, err := os.Create(filepath.Join(traceDir, label+".trace.json"))
				if err != nil {
					fatal("create trace sink", err)
				}
				defer f.Close()
				if err := tr.WriteJSON(f); err != nil {
					logger.Warn("trace sink", "run", label, "err", err)
				}
			})
		}
		return func() {
			for _, c := range cleanups {
				c()
			}
		}
	}
}
