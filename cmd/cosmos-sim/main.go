// Command cosmos-sim runs one workload on one secure-memory design and
// prints the full metric set: IPC, miss rates, CTR cache behaviour, DRAM
// traffic decomposition, predictor statistics and SMAT.
//
// Examples:
//
//	cosmos-sim -workload DFS -design COSMOS -accesses 2000000
//	cosmos-sim -workload mcf -design MorphCtr -accesses 1000000 -cores 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cosmos-sim: ")

	var (
		workload  = flag.String("workload", "DFS", "workload name ("+strings.Join(workloads.AllNames(), ", ")+")")
		design    = flag.String("design", "COSMOS", "design point ("+strings.Join(secmem.DesignNames(), ", ")+")")
		accesses  = flag.Uint64("accesses", 2_000_000, "memory accesses to simulate")
		cores     = flag.Int("cores", 4, "core/thread count")
		nodes     = flag.Int("graph-nodes", 0, "graph vertex count (0 = default)")
		degree    = flag.Int("graph-degree", 0, "graph average attachment degree (0 = default)")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		ctrPolicy = flag.String("ctr-policy", "", "override CTR cache replacement (LRU, RRIP, SHiP, Mockingjay, Random)")
		ctrPf     = flag.String("ctr-prefetcher", "", "CTR cache prefetcher (nextline, stride, berti)")
		ctrBytes  = flag.Int("ctr-cache", 0, "CTR cache bytes per core (0 = Table 3 default)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut   = flag.Bool("json", false, "emit the raw Results struct as JSON (for scripting)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this duration (0 = none)")

		statsOut   = flag.String("stats-out", "", "write a per-interval metric time-series to this file (.csv = CSV, else JSONL)")
		statsIvl   = flag.Uint64("stats-interval", 100_000, "sampling interval in accesses for -stats-out")
		traceOut   = flag.String("trace-out", "", "write off-chip access event traces as Chrome trace_event JSON (Perfetto/about://tracing)")
		traceLimit = flag.Int("trace-limit", 0, "max trace slices recorded (0 = default cap)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	)
	flag.Parse()

	// SIGINT/SIGTERM (or -timeout) stop the simulation within
	// sim.CancelCheckEvery steps; the metrics accumulated so far still
	// print, flagged as partial.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	d, err := secmem.DesignByName(*design)
	if err != nil {
		log.Fatal(err)
	}
	d.CtrPolicy = *ctrPolicy
	d.CtrPrefetcher = *ctrPf
	d.CtrCacheBytes = *ctrBytes

	cfg := sim.DefaultConfig()
	if *cores == 8 {
		cfg = sim.EightCore()
	} else {
		cfg.Cores = *cores
	}
	cfg.MC.Seed = *seed
	cfg.MC.Params.Seed = *seed

	gen, err := workloads.Build(*workload, workloads.Options{
		Threads: *cores, Seed: *seed, GraphNodes: *nodes, GraphDegree: *degree,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := sim.New(cfg, d)

	if *statsOut != "" || *traceOut != "" {
		reg := telemetry.NewRegistry()
		s.RegisterMetrics(reg.Root())
		if *statsOut != "" {
			f, err := os.Create(*statsOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			scfg := telemetry.SamplerConfig{Interval: *statsIvl}
			if strings.HasSuffix(*statsOut, ".csv") {
				scfg.CSV = f
			} else {
				scfg.JSONL = f
			}
			sp, err := telemetry.NewSampler(reg, scfg)
			if err != nil {
				log.Fatal(err)
			}
			s.AttachSampler(sp)
			defer func() {
				if err := sp.Err(); err != nil {
					log.Fatalf("stats sink: %v", err)
				}
			}()
		}
		if *traceOut != "" {
			tr := telemetry.NewTracer(*traceLimit)
			s.AttachTracer(tr)
			defer func() {
				f, err := os.Create(*traceOut)
				if err != nil {
					log.Fatal(err)
				}
				defer f.Close()
				if err := tr.WriteJSON(f); err != nil {
					log.Fatalf("trace sink: %v", err)
				}
				if n := tr.Dropped(); n > 0 {
					log.Printf("trace: %d slices dropped (event cap reached; raise -trace-limit)", n)
				}
			}()
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	r, runErr := s.RunContext(ctx, trace.Limit(gen, *accesses), *accesses)
	if runErr != nil {
		log.Printf("simulation stopped after %d of %d accesses: %v (results below are partial)",
			r.Accesses, *accesses, runErr)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			log.Fatal(err)
		}
		return
	}
	printResults(r, *csv)
}

func printResults(r sim.Results, csv bool) {
	t := stats.NewTable(fmt.Sprintf("%s on %s", r.Design, r.Workload), "metric", "value")
	t.Row("accesses", r.Accesses)
	t.Row("reads/writes", fmt.Sprintf("%d/%d", r.Reads, r.Writes))
	t.Row("instructions", r.Instructions)
	t.Row("cycles", r.Cycles)
	t.Row("IPC", r.IPC)
	t.Row("L1 miss rate", stats.Pct(r.L1MissRate))
	t.Row("L2 miss rate", stats.Pct(r.L2MissRate))
	t.Row("LLC miss rate", stats.Pct(r.LLCMissRate))
	t.Row("CTR accesses", r.CtrAccesses)
	t.Row("CTR miss rate", stats.Pct(r.CtrMissRate))
	t.Row("off-chip reads", r.OffChipReads)
	t.Row("walk bypasses", r.Bypassed)
	t.Row("bypass rate", stats.Pct(r.BypassRate))
	t.Row("avg fetch latency", r.AvgFetchLat)
	t.Row("SMAT (cycles)", r.SMAT)
	t.Row("DRAM row-hit rate", stats.Pct(r.DRAM.RowHitRate()))

	tr := r.Traffic
	t.Row("traffic: data read", tr.DataRead)
	t.Row("traffic: data write", tr.DataWrite)
	t.Row("traffic: ctr read", tr.CtrRead)
	t.Row("traffic: ctr writeback", tr.CtrWrite)
	t.Row("traffic: MT node read", tr.MTRead)
	t.Row("traffic: MAC read", tr.MACRead)
	t.Row("traffic: MAC write", tr.MACWrite)
	t.Row("traffic: re-encryption", tr.ReEncWrite)
	t.Row("traffic: wasted fetch", tr.WastedDataFetch)
	t.Row("traffic: total", tr.Total())

	if r.DataPred != nil {
		t.Row("data pred accuracy", stats.Pct(r.DataPred.Accuracy()))
		t.Row("data pred on-chip ok/bad", fmt.Sprintf("%d/%d", r.DataPred.PredOnCorrect, r.DataPred.PredOnWrong))
		t.Row("data pred off-chip ok/bad", fmt.Sprintf("%d/%d", r.DataPred.PredOffCorrect, r.DataPred.PredOffWrong))
	}
	if r.CtrPred != nil {
		t.Row("ctr pred good fraction", stats.Pct(r.CtrPred.GoodFraction()))
		t.Row("ctr pred CET hits/misses", fmt.Sprintf("%d/%d", r.CtrPred.CETHits, r.CtrPred.CETMisses))
	}
	if r.Prefetch.Issued > 0 {
		t.Row("prefetch issued/useful", fmt.Sprintf("%d/%d", r.Prefetch.Issued, r.Prefetch.Useful))
		t.Row("prefetch accuracy", stats.Pct(r.Prefetch.Accuracy()))
	}
	if csv {
		fmt.Print(t.CSV())
		return
	}
	t.Write(os.Stdout)
}
