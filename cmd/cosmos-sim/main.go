// Command cosmos-sim runs one workload on one secure-memory design and
// prints the full metric set: IPC, miss rates, CTR cache behaviour, DRAM
// traffic decomposition, predictor statistics and SMAT.
//
// Examples:
//
//	cosmos-sim -workload DFS -design COSMOS -accesses 2000000
//	cosmos-sim -workload mcf -design MorphCtr -accesses 1000000 -cores 8
//	cosmos-sim -workload DFS -design COSMOS -listen localhost:9090
//	cosmos-sim -workload mcf,DFS -design COSMOS -span-sample 64 -watch -listen :0
//
// With -listen the simulation serves its live observability plane while it
// runs: /metrics exposes the full telemetry registry of the system in
// Prometheus text format, /events streams interval-sampler snapshots, and
// /debug/pprof profiles the simulator itself.
//
// -span-sample enables access-level span tracing: per-cause latency
// histograms feed tail percentiles (p50/p95/p99/p999) into the results and
// a deterministic 1-in-N access subset gets a full span tree, the slowest
// exemplars served on /spans. -watch runs the online watchdog over the
// interval-sampler stream and flags phase changes and anomalies as
// events, metrics and /phases segments. A comma-separated -workload chains
// workloads back to back — the canonical phase-change input.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/obs"
	"cosmos/internal/policytrain"
	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/watch"
	"cosmos/internal/workloads"
)

// buildWorkloads resolves the -workload flag: a single name builds that
// workload, a comma-separated list chains the named workloads back to back
// with trace.Concat, splitting the access budget evenly (the last phase
// takes the remainder).
func buildWorkloads(spec string, accesses uint64, opts workloads.Options) (trace.Generator, error) {
	names := strings.Split(spec, ",")
	if len(names) == 1 {
		return workloads.Build(spec, opts)
	}
	per := accesses / uint64(len(names))
	parts := make([]trace.Generator, len(names))
	for i, name := range names {
		g, err := workloads.Build(strings.TrimSpace(name), opts)
		if err != nil {
			return nil, err
		}
		limit := per
		if i == len(names)-1 {
			limit = accesses - per*uint64(len(names)-1)
		}
		parts[i] = trace.Limit(g, limit)
	}
	return trace.Concat(spec, parts...), nil
}

func main() {
	var (
		workload  = flag.String("workload", "DFS", "workload name ("+strings.Join(workloads.AllNames(), ", ")+")")
		design    = flag.String("design", "COSMOS", "design point ("+strings.Join(secmem.DesignNames(), ", ")+")")
		accesses  = flag.Uint64("accesses", 2_000_000, "memory accesses to simulate")
		cores     = flag.Int("cores", 4, "core/thread count")
		nodes     = flag.Int("graph-nodes", 0, "graph vertex count (0 = default)")
		degree    = flag.Int("graph-degree", 0, "graph average attachment degree (0 = default)")
		seed      = flag.Uint64("seed", 42, "deterministic seed")
		ctrPolicy = flag.String("ctr-policy", "", "override CTR cache replacement (LRU, RRIP, SHiP, Mockingjay, Random)")
		ctrPf     = flag.String("ctr-prefetcher", "", "CTR cache prefetcher (nextline, stride, berti)")
		ctrBytes  = flag.Int("ctr-cache", 0, "CTR cache bytes per core (0 = Table 3 default)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut   = flag.Bool("json", false, "emit the raw Results struct as JSON (for scripting)")

		timeout   = cliflags.RegisterTimeout(flag.CommandLine)
		obsFlags  = cliflags.RegisterObs(flag.CommandLine)
		faults    = cliflags.RegisterFault(flag.CommandLine)
		parCores  = cliflags.RegisterParallelCores(flag.CommandLine)
		policy    = cliflags.RegisterPolicy(flag.CommandLine)
		spanFlags = cliflags.RegisterSpans(flag.CommandLine)

		statsOut   = flag.String("stats-out", "", "write a per-interval metric time-series to this file (.csv = CSV, else JSONL)")
		statsIvl   = flag.Uint64("stats-interval", 100_000, "sampling interval in accesses for -stats-out")
		traceOut   = flag.String("trace-out", "", "write off-chip access event traces as Chrome trace_event JSON (Perfetto/about://tracing)")
		traceLimit = flag.Int("trace-limit", 0, "max trace slices recorded (0 = default cap)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	)
	flag.Parse()

	if policy.List {
		cliflags.ListPolicies(os.Stdout)
		return
	}

	logger, err := obsFlags.Logger("cosmos-sim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-sim:", err)
		os.Exit(1)
	}
	die := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM (or -timeout) stop the simulation within
	// sim.CancelCheckEvery steps; the metrics accumulated so far still
	// print, flagged as partial.
	ctx, stopSignals := cliflags.SignalContext(*timeout)
	defer stopSignals()

	d, err := secmem.DesignByName(*design)
	if err != nil {
		die("resolve design", err)
	}
	d.CtrPolicy = *ctrPolicy
	d.CtrPrefetcher = *ctrPf
	d.CtrCacheBytes = *ctrBytes

	cfg := sim.DefaultConfig()
	if *cores == 8 {
		cfg = sim.EightCore()
	} else {
		cfg.Cores = *cores
	}
	cfg.MC.Seed = *seed
	cfg.MC.Params.Seed = *seed
	cfg.Fault = faults.Config()
	if err := policy.Apply(&cfg.MC.Params); err != nil {
		die("resolve policy", err)
	}
	if err := cfg.Validate(); err != nil {
		die("validate config", err)
	}

	// A comma-separated -workload runs the named workloads back to back as
	// phases of one access stream (the -accesses budget split evenly, the
	// last phase taking the remainder) — the shape the watchdog detects as
	// a phase change.
	gen, err := buildWorkloads(*workload, *accesses, workloads.Options{
		Threads: *cores, Seed: *seed, GraphNodes: *nodes, GraphDegree: *degree,
	})
	if err != nil {
		die("build workload", err)
	}

	s := sim.New(cfg, d)
	s.SetParallelCores(*parCores)
	label := *workload + "_" + d.Name

	spanRec := spanFlags.Recorder()
	if spanRec != nil {
		s.AttachSpans(spanRec)
	}

	if policy.Log != "" {
		lw, err := policytrain.CreateLog(policy.Log)
		if err != nil {
			die("create policy log", err)
		}
		if dp := s.MC().DataPred; dp != nil {
			dp.AttachRecorder(lw.Sink(policytrain.RoleData))
		}
		if cp := s.MC().CtrPred; cp != nil {
			cp.AttachRecorder(lw.Sink(policytrain.RoleCtr))
		}
		defer func() {
			if err := lw.Close(); err != nil {
				die("policy log", err)
			}
			logger.Info("policy transition log written", "path", policy.Log, "records", lw.Records)
		}()
	}

	// Phase attribution is always on: the attributed run loop costs ~two
	// clock reads per 256 steps and feeds the wall-time breakdown in the
	// summary, the -json Perf block and the cosmos_perf_* metric families.
	phases := telemetry.NewPhases()
	s.AttachPhases(phases)

	var broker *obs.Broker
	var table *obs.RunTable
	if obsFlags.Listen != "" {
		broker = obs.NewBroker()
		table = obs.NewRunTable(1, broker)
		if in := s.Faults(); in != nil {
			in.Notify = broker.FaultNotifier(label)
		}
	}

	if *statsOut != "" || *traceOut != "" || obsFlags.Listen != "" || spanFlags.Watch || spanRec != nil {
		reg := telemetry.NewRegistry()
		s.RegisterMetrics(reg.Root())
		phases.RegisterMetrics(reg.Root().Scope("perf"))
		if spanRec != nil {
			spanRec.RegisterMetrics(reg.Root().Scope("span"))
		}
		sinks := telemetry.SamplerConfig{Interval: *statsIvl}
		var dog *watch.Dog
		if spanFlags.Watch {
			// The watchdog consumes the sampler's interval rows in process;
			// -watch therefore forces a sampler even with no file sink.
			dog = watch.New(reg, watch.Config{
				Notify: obs.WatchNotifier(logger, broker, label),
			})
			dog.RegisterMetrics(reg.Root().Scope("watch"))
			sinks.Observer = dog.ObserveRow
		}
		if *statsOut != "" {
			f, err := os.Create(*statsOut)
			if err != nil {
				die("create stats sink", err)
			}
			defer f.Close()
			if strings.HasSuffix(*statsOut, ".csv") {
				sinks.CSV = f
			} else {
				sinks.JSONL = f
			}
		}
		if broker != nil {
			bw := broker.SampleWriter(label)
			if sinks.JSONL != nil {
				sinks.JSONL = io.MultiWriter(bw, sinks.JSONL)
			} else {
				sinks.JSONL = bw
			}
		}
		if sinks.JSONL != nil || sinks.CSV != nil || sinks.Observer != nil {
			sp, err := telemetry.NewSampler(reg, sinks)
			if err != nil {
				die("build sampler", err)
			}
			s.AttachSampler(sp)
			defer func() {
				if err := sp.Err(); err != nil {
					die("stats sink", err)
				}
			}()
		}
		if *traceOut != "" {
			tr := telemetry.NewTracer(*traceLimit)
			s.AttachTracer(tr)
			defer func() {
				f, err := os.Create(*traceOut)
				if err != nil {
					die("create trace sink", err)
				}
				defer f.Close()
				if err := tr.WriteJSON(f); err != nil {
					die("trace sink", err)
				}
				if n := tr.Dropped(); n > 0 {
					logger.Warn("trace slices dropped (event cap reached; raise -trace-limit)", "dropped", n)
				}
			}()
		}
		if obsFlags.Listen != "" {
			var spanHub *obs.SpanHub
			if spanRec != nil {
				spanHub = obs.NewSpanHub()
				spanHub.Register(label, spanRec)
			}
			var watchHub *obs.WatchHub
			if dog != nil {
				watchHub = obs.NewWatchHub()
				watchHub.Register(label, dog)
			}
			srv := obs.NewServer(obs.Config{
				Component: "cosmos-sim",
				Registry:  reg,
				Runs:      table,
				Events:    broker,
				Spans:     spanHub,
				Watch:     watchHub,
				Logger:    logger,
			})
			if err := srv.Start(obsFlags.Listen); err != nil {
				die("observability plane", err)
			}
			logger.Info("observability plane listening", "addr", srv.URL())
			defer func() {
				sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				defer cancel()
				_ = srv.Shutdown(sdCtx)
			}()
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			die("create cpuprofile", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			die("start cpuprofile", err)
		}
		defer pprof.StopCPUProfile()
	}

	// The single simulation appears as a one-cell run table on /runs.
	if table != nil {
		table.Observe(runner.Transition{Key: label, Label: label, Phase: runner.PhaseRunning})
	}
	started := time.Now()
	r, runErr := s.RunContext(ctx, trace.Limit(gen, *accesses), *accesses)
	wall := time.Since(started)
	pb := phases.Breakdown()
	if table != nil {
		table.Observe(runner.Transition{
			Key: label, Label: label, Phase: runner.PhaseDone,
			Source: runner.SourceExecuted, ExecTime: wall, Err: runErr, Perf: &pb,
		})
	}
	if runErr != nil {
		logger.Warn("simulation stopped early; results are partial",
			"completed", r.Accesses, "requested", *accesses, "err", runErr)
	}
	if *jsonOut {
		// Results stays embedded at the top level (scripts read fields like
		// .Fault directly); the perf breakdown rides as a sibling key.
		out := struct {
			sim.Results
			Perf telemetry.PhaseBreakdown
		}{r, pb}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			die("encode results", err)
		}
		return
	}
	printResults(r, wall, pb, *csv)
}

func printResults(r sim.Results, wall time.Duration, pb telemetry.PhaseBreakdown, csv bool) {
	t := stats.NewTable(fmt.Sprintf("%s on %s", r.Design, r.Workload), "metric", "value")
	t.Row("accesses", r.Accesses)
	t.Row("wall time", wall.Round(time.Millisecond))
	if secs := wall.Seconds(); secs > 0 {
		t.Row("simulated accesses/sec", fmt.Sprintf("%.4g", float64(r.Accesses)/secs))
	}
	t.Row("phase breakdown (ms)", fmt.Sprintf("decode %.0f, step %.0f, report %.0f",
		pb.DecodeMS, pb.StepMS, pb.ReportMS))
	t.Row("reads/writes", fmt.Sprintf("%d/%d", r.Reads, r.Writes))
	t.Row("instructions", r.Instructions)
	t.Row("cycles", r.Cycles)
	t.Row("IPC", r.IPC)
	t.Row("L1 miss rate", stats.Pct(r.L1MissRate))
	t.Row("L2 miss rate", stats.Pct(r.L2MissRate))
	t.Row("LLC miss rate", stats.Pct(r.LLCMissRate))
	t.Row("CTR accesses", r.CtrAccesses)
	t.Row("CTR miss rate", stats.Pct(r.CtrMissRate))
	t.Row("off-chip reads", r.OffChipReads)
	t.Row("walk bypasses", r.Bypassed)
	t.Row("bypass rate", stats.Pct(r.BypassRate))
	t.Row("avg fetch latency", r.AvgFetchLat)
	if r.Tail != nil {
		for _, st := range r.Tail.Causes {
			t.Row("tail: "+st.Cause+" p50/p95/p99/p999",
				fmt.Sprintf("%.0f/%.0f/%.0f/%.0f (max %d, n=%d)",
					st.P50, st.P95, st.P99, st.P999, st.Max, st.Count))
		}
		t.Row("span trees sampled", fmt.Sprintf("%d (1 in %d)", r.Tail.Sampled, r.Tail.SampleEvery))
	}
	t.Row("SMAT (cycles)", r.SMAT)
	t.Row("DRAM row-hit rate", stats.Pct(r.DRAM.RowHitRate()))

	tr := r.Traffic
	t.Row("traffic: data read", tr.DataRead)
	t.Row("traffic: data write", tr.DataWrite)
	t.Row("traffic: ctr read", tr.CtrRead)
	t.Row("traffic: ctr writeback", tr.CtrWrite)
	t.Row("traffic: MT node read", tr.MTRead)
	t.Row("traffic: MAC read", tr.MACRead)
	t.Row("traffic: MAC write", tr.MACWrite)
	t.Row("traffic: re-encryption", tr.ReEncWrite)
	t.Row("traffic: wasted fetch", tr.WastedDataFetch)
	t.Row("traffic: total", tr.Total())

	if r.DataPred != nil {
		t.Row("data pred accuracy", stats.Pct(r.DataPred.Accuracy()))
		t.Row("data pred on-chip ok/bad", fmt.Sprintf("%d/%d", r.DataPred.PredOnCorrect, r.DataPred.PredOnWrong))
		t.Row("data pred off-chip ok/bad", fmt.Sprintf("%d/%d", r.DataPred.PredOffCorrect, r.DataPred.PredOffWrong))
	}
	if r.CtrPred != nil {
		t.Row("ctr pred good fraction", stats.Pct(r.CtrPred.GoodFraction()))
		t.Row("ctr pred CET hits/misses", fmt.Sprintf("%d/%d", r.CtrPred.CETHits, r.CtrPred.CETMisses))
	}
	if r.Prefetch.Issued > 0 {
		t.Row("prefetch issued/useful", fmt.Sprintf("%d/%d", r.Prefetch.Issued, r.Prefetch.Useful))
		t.Row("prefetch accuracy", stats.Pct(r.Prefetch.Accuracy()))
	}
	if f := r.Fault; f != nil {
		t.Row("faults injected", f.Injected)
		t.Row("faults detected", f.Detected)
		t.Row("faults silent", f.Silent)
		t.Row("faults by kind (data/ctr/mac/mt)", fmt.Sprintf("%d/%d/%d/%d",
			f.DataDetected, f.CtrDetected, f.MACDetected, f.MTDetected))
		t.Row("fault transient repaired", f.TransientRepaired)
		t.Row("fault lines poisoned", f.Poisoned)
		t.Row("fault retry fetches", f.Refetches)
		t.Row("fault retry cycles", f.RetryCycles)
		if f.CrashStep > 0 {
			t.Row("crash at access", f.CrashStep)
			t.Row("crash lines lost", f.CrashLinesLost)
			t.Row("recovery fetches", f.RecoveryFetches)
			t.Row("recovery cost (cycles)", f.RecoveryCycles)
		}
	}
	if csv {
		fmt.Print(t.CSV())
		return
	}
	t.Write(os.Stdout)
}
