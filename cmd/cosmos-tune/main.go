// Command cosmos-tune searches the policy and parameter space.
//
// The default phase is the policy tournament: every candidate policy kind
// runs every tournament workload through the run orchestrator (memoised,
// deduplicated, resumable via -results-dir, observable via -listen), and
// the leaderboard ranks kinds by NP-normalised speedup against their
// predictor storage cost.
//
//	cosmos-tune                              # tabular vs perceptron vs mlp on DFS+mcf
//	cosmos-tune -kinds perceptron,mlp -workloads DFS,BFS,mcf
//	cosmos-tune -results-dir runs/ -listen :9090
//
// The paper's §4.5 random searches are the other two phases: 1,000
// hyper-parameter combinations and 1,000 reward combinations evaluated on
// a captured workload footprint and ranked by LCR-CTR hit rate.
//
//	cosmos-tune -phase hyper -trials 100
//	cosmos-tune -phase rewards -trials 100
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/core"
	"cosmos/internal/experiments"
	"cosmos/internal/obs"
	"cosmos/internal/rl"
	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func main() {
	var (
		phase     = flag.String("phase", "tournament", "search phase: tournament | hyper | rewards")
		trials    = flag.Int("trials", 100, "random combinations to test in hyper/rewards phases (paper: 1000)")
		accesses  = flag.Uint64("accesses", 300_000, "trace length per trial")
		workload  = flag.String("workload", "DFS", "hyper/rewards tuning workload (paper: GraphBIG DFS)")
		seed      = flag.Uint64("seed", 7, "search seed")
		top       = flag.Int("top", 10, "results to print in hyper/rewards phases")
		kindsFlag = flag.String("kinds", strings.Join(rl.PolicyKinds(), ","), "comma-separated policy kinds entering the tournament")
		wlsFlag   = flag.String("workloads", "DFS,mcf", "comma-separated tournament workloads")
		scale     = flag.Float64("scale", 0, "tournament workload scale factor (0 = smoke scale)")
		par       = flag.Int("parallel", runtime.NumCPU(), "concurrent tournament simulations")
		results   = flag.String("results-dir", "", "persist completed tournament simulations here and resume from it on rerun")

		timeout  = cliflags.RegisterTimeout(flag.CommandLine)
		obsFlags = cliflags.RegisterObs(flag.CommandLine)
		listPol  = flag.Bool("list-policies", false, "list the available policy kinds and exit")
	)
	flag.Parse()

	if *listPol {
		cliflags.ListPolicies(os.Stdout)
		return
	}

	logger, err := obsFlags.Logger("cosmos-tune")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-tune:", err)
		os.Exit(1)
	}
	die := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM stop the search between (or mid-) trials; rankings over
	// the work completed so far still print.
	ctx, stopSignals := cliflags.SignalContext(*timeout)
	defer stopSignals()

	switch *phase {
	case "tournament":
		code := tournament(ctx, logger.With("phase", "tournament"), tournamentOpts{
			kinds:     splitList(*kindsFlag),
			workloads: splitList(*wlsFlag),
			scale:     *scale,
			seed:      *seed,
			parallel:  *par,
			results:   *results,
			listen:    obsFlags.Listen,
		})
		os.Exit(code)
	case "hyper", "rewards":
	default:
		die("phase", fmt.Errorf("unknown phase %q (valid: tournament, hyper, rewards)", *phase))
	}

	rng := rl.NewRand(*seed)
	type result struct {
		desc    string
		hitRate float64
	}
	var searchResults []result
	interrupted := false

	// Search progress for the observability plane (atomics: the serving
	// goroutine reads while the search loop writes).
	var trialsDone atomic.Uint64
	var bestMilli atomic.Uint64 // best hit rate × 1000
	if obsFlags.Listen != "" {
		reg := telemetry.NewRegistry()
		sc := reg.Scope("tune")
		sc.CounterFunc("trials_done", trialsDone.Load)
		sc.Gauge("best_hit_rate", func() float64 { return float64(bestMilli.Load()) / 1000 })
		srv := obs.NewServer(obs.Config{Component: "cosmos-tune", Registry: reg, Logger: logger})
		if err := srv.Start(obsFlags.Listen); err != nil {
			die("observability plane", err)
		}
		logger.Info("observability plane listening", "addr", srv.URL())
		defer func() {
			sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(sdCtx)
		}()
	}

	evaluate := func(p core.Params, desc string) {
		if interrupted {
			return
		}
		gen, err := workloads.Build(*workload, workloads.Options{
			Threads: 4, Seed: 42,
			GraphNodes:  experiments.SmallScale().GraphNodes,
			GraphDegree: experiments.SmallScale().GraphDegree,
		})
		if err != nil {
			die("build workload", err)
		}
		cfg := sim.DefaultConfig()
		cfg.MC.Params = p
		if err := cfg.Validate(); err != nil {
			die("validate config", err)
		}
		s := sim.New(cfg, secmem.DesignCosmos())
		r, err := s.RunContext(ctx, trace.Limit(gen, *accesses), *accesses)
		if err != nil {
			logger.Warn("search interrupted; ranking completed trials",
				"completed", len(searchResults), "err", err)
			interrupted = true
			return
		}
		hit := 1 - r.CtrMissRate
		searchResults = append(searchResults, result{desc: desc, hitRate: hit})
		trialsDone.Add(1)
		if m := uint64(math.Round(hit * 1000)); m > bestMilli.Load() {
			bestMilli.Store(m)
		}
	}

	base := core.DefaultParams()
	switch *phase {
	case "hyper":
		// Fixed rewards ±10 (as in §4.5), random (α, γ, ε) triples.
		fixed := base
		fixed.DataRewards = core.DataRewards{Hi: 10, Mo: 10, Ho: -10, Mi: -10}
		fixed.CtrRewards = core.CtrRewards{Hg: 10, Hb: -10, Mb: 10, Mg: -10, Eb: 10, Eg: -10}
		for i := 0; i < *trials; i++ {
			p := fixed
			p.Data = core.Hyper{Alpha: 0.001 + rng.Float64()*0.999, Gamma: 0.001 + rng.Float64()*0.999, Epsilon: rng.Float64() * 0.5}
			p.Ctr = core.Hyper{Alpha: 0.001 + rng.Float64()*0.999, Gamma: 0.001 + rng.Float64()*0.999, Epsilon: rng.Float64() * 0.1}
			evaluate(p, fmt.Sprintf("aD=%.3f gD=%.2f eD=%.3f | aC=%.3f gC=%.2f eC=%.4f",
				p.Data.Alpha, p.Data.Gamma, p.Data.Epsilon, p.Ctr.Alpha, p.Ctr.Gamma, p.Ctr.Epsilon))
		}
		// Include the paper's tuned triple for reference.
		evaluate(base, "PAPER: aD=0.090 gD=0.88 eD=0.100 | aC=0.050 gC=0.35 eC=0.0010")
	case "rewards":
		// Fixed tuned hyper-parameters, random rewards in the paper's
		// ranges (positive 0..100, negative -100..-1).
		pos := func() float64 { return float64(rng.Intn(101)) }
		neg := func() float64 { return -1 - float64(rng.Intn(100)) }
		for i := 0; i < *trials; i++ {
			p := base
			p.DataRewards = core.DataRewards{Hi: pos(), Mo: pos(), Ho: neg(), Mi: neg()}
			p.CtrRewards = core.CtrRewards{Hg: pos(), Mb: pos(), Eb: pos(), Hb: neg(), Mg: neg(), Eg: neg()}
			evaluate(p, fmt.Sprintf("D{hi=%.0f mo=%.0f ho=%.0f mi=%.0f} C{hg=%.0f mb=%.0f eb=%.0f hb=%.0f mg=%.0f eg=%.0f}",
				p.DataRewards.Hi, p.DataRewards.Mo, p.DataRewards.Ho, p.DataRewards.Mi,
				p.CtrRewards.Hg, p.CtrRewards.Mb, p.CtrRewards.Eb, p.CtrRewards.Hb, p.CtrRewards.Mg, p.CtrRewards.Eg))
		}
		evaluate(base, "PAPER: Table 1 rewards")
	}

	sort.Slice(searchResults, func(i, j int) bool { return searchResults[i].hitRate > searchResults[j].hitRate })
	if *top > len(searchResults) {
		*top = len(searchResults)
	}
	fmt.Printf("top %d of %d combinations by LCR-CTR hit rate (%s):\n", *top, len(searchResults), *workload)
	for i := 0; i < *top; i++ {
		fmt.Printf("%2d. hit=%.3f  %s\n", i+1, searchResults[i].hitRate, searchResults[i].desc)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

type tournamentOpts struct {
	kinds     []string
	workloads []string
	scale     float64
	seed      uint64
	parallel  int
	results   string
	listen    string
}

// tournament races every candidate policy kind over every workload: each
// candidate gets its own Lab (the policy pair enters each run's content
// hash), all labs share one result store, and the leaderboard ranks kinds
// by geometric-mean NP-normalised speedup against storage cost.
func tournament(ctx context.Context, logger interface {
	Info(string, ...any)
	Error(string, ...any)
}, o tournamentOpts) int {
	if len(o.kinds) == 0 || len(o.workloads) == 0 {
		logger.Error("tournament needs at least one kind and one workload")
		return 1
	}
	for _, kind := range o.kinds {
		if err := (&rl.PolicySpec{Kind: kind}).Validate(); err != nil {
			logger.Error("candidate", "err", err)
			return 1
		}
	}

	var broker *obs.Broker
	if o.listen != "" {
		broker = obs.NewBroker()
	}
	table := obs.NewRunTable(o.parallel, broker)
	var store *runner.Store
	if o.results != "" {
		var err error
		store, err = runner.OpenStore(o.results)
		if err != nil {
			logger.Error("open results dir", "err", err)
			return 1
		}
		if n := store.Len(); n > 0 {
			logger.Info("resuming tournament", "results_dir", store.Dir(), "completed_runs", n)
		}
	}
	if o.listen != "" {
		reg := telemetry.NewRegistry()
		srv := obs.NewServer(obs.Config{Component: "cosmos-tune", Registry: reg, Runs: table, Events: broker})
		if err := srv.Start(o.listen); err != nil {
			logger.Error("observability plane", "err", err)
			return 1
		}
		logger.Info("observability plane listening", "addr", srv.URL())
		defer func() {
			sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(sdCtx)
		}()
	}

	sc := experiments.Scaled(o.scale)
	sc.Seed = o.seed
	newLab := func(opts ...experiments.LabOption) *experiments.Lab {
		opts = append(opts,
			experiments.WithContext(ctx),
			experiments.WithWorkers(o.parallel),
			experiments.WithLifecycle(func(t runner.Transition) {
				table.Observe(t)
				if t.Phase == runner.PhaseDone && t.Source == runner.SourceExecuted {
					done, total, _ := table.Progress()
					logger.Info("cell done", "cell", t.Label, "done", done, "total", total,
						"exec_time", t.ExecTime.Round(time.Millisecond))
				}
			}),
		)
		if store != nil {
			opts = append(opts, experiments.WithStore(store))
		}
		return experiments.NewLab(sc, opts...)
	}

	// The baseline lab (no policy option) provides NP cycles per workload; it
	// shares the store, so baselines resume too.
	baseline := newLab()
	type cell struct {
		kind     string
		workload string
		speedup  float64
		ctrMiss  float64
	}
	type standing struct {
		kind    string
		bits    int
		geomean float64
	}
	var cells []cell
	var board []standing
	executed := 0
	for _, kind := range o.kinds {
		spec := &rl.PolicySpec{Kind: kind}
		// Both predictor roles run the candidate kind — the tournament races
		// whole policy families, not single roles.
		lab := newLab(experiments.WithPolicy(spec, spec))
		probe, err := rl.NewPolicy(*spec, o.seed)
		if err != nil {
			logger.Error("candidate", "kind", kind, "err", err)
			return 1
		}
		logmean := 0.0
		for _, wl := range o.workloads {
			np := baseline.Run(wl, secmem.DesignNP())
			r := lab.Run(wl, secmem.DesignCosmos())
			if err := lab.Err(); err != nil {
				logger.Error("tournament aborted", "kind", kind, "workload", wl, "err", err)
				return 1
			}
			if err := baseline.Err(); err != nil {
				logger.Error("tournament aborted", "workload", wl, "err", err)
				return 1
			}
			speedup := 0.0
			if r.Cycles > 0 {
				speedup = float64(np.Cycles) / float64(r.Cycles)
			}
			cells = append(cells, cell{kind: kind, workload: wl, speedup: speedup, ctrMiss: r.CtrMissRate})
			logmean += math.Log(math.Max(speedup, 1e-12))
		}
		st := lab.Orchestrator().Stats()
		executed += int(st.Executed)
		board = append(board, standing{
			kind:    kind,
			bits:    probe.StorageBits(),
			geomean: math.Exp(logmean / float64(len(o.workloads))),
		})
	}

	t := stats.NewTable(fmt.Sprintf("policy tournament: %d kinds x %d workloads (COSMOS vs NP, both roles)",
		len(o.kinds), len(o.workloads)), "kind", "workload", "perf-vs-NP", "ctr-miss")
	for _, c := range cells {
		t.Row(c.kind, c.workload, fmt.Sprintf("%.3f", c.speedup), stats.Pct(c.ctrMiss))
	}
	t.Write(os.Stdout)

	sort.Slice(board, func(i, j int) bool { return board[i].geomean > board[j].geomean })
	lb := stats.NewTable("leaderboard: storage bits vs geomean speedup", "rank", "kind", "storage-bits", "geomean-perf")
	for i, s := range board {
		lb.Row(i+1, s.kind, s.bits, fmt.Sprintf("%.3f", s.geomean))
	}
	lb.Write(os.Stdout)

	bst := baseline.Orchestrator().Stats()
	executed += int(bst.Executed)
	fmt.Printf("executed %d simulations this invocation (rest restored from the results dir or memoised)\n", executed)
	return 0
}
