// Command cosmos-tune reproduces the paper's hyper-parameter and reward
// search (§4.5): random combinations are evaluated on a captured workload
// footprint and ranked by the resulting LCR-CTR cache hit rate.
//
// The paper tests 1,000 hyper-parameter combinations and then 1,000 reward
// combinations against a Pintool capture of GraphBIG DFS; we sample our own
// deterministic DFS trace the same way.
//
//	cosmos-tune -phase hyper -trials 100
//	cosmos-tune -phase rewards -trials 100
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"cosmos/cmd/internal/cliflags"
	"cosmos/internal/core"
	"cosmos/internal/experiments"
	"cosmos/internal/obs"
	"cosmos/internal/rl"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func main() {
	var (
		phase    = flag.String("phase", "hyper", "search phase: hyper | rewards")
		trials   = flag.Int("trials", 100, "random combinations to test (paper: 1000)")
		accesses = flag.Uint64("accesses", 300_000, "trace length per trial")
		workload = flag.String("workload", "DFS", "tuning workload (paper: GraphBIG DFS)")
		seed     = flag.Uint64("seed", 7, "search seed")
		top      = flag.Int("top", 10, "results to print")

		obsFlags = cliflags.RegisterObs(flag.CommandLine)
	)
	flag.Parse()

	logger, err := obsFlags.Logger("cosmos-tune")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosmos-tune:", err)
		os.Exit(1)
	}
	die := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM stop the search between (or mid-) trials; the ranking
	// over the trials completed so far still prints.
	ctx, stopSignals := cliflags.SignalContext(0)
	defer stopSignals()

	rng := rl.NewRand(*seed)
	type result struct {
		desc    string
		hitRate float64
	}
	var results []result
	interrupted := false

	// Search progress for the observability plane (atomics: the serving
	// goroutine reads while the search loop writes).
	var trialsDone atomic.Uint64
	var bestMilli atomic.Uint64 // best hit rate × 1000
	if obsFlags.Listen != "" {
		reg := telemetry.NewRegistry()
		sc := reg.Scope("tune")
		sc.CounterFunc("trials_done", trialsDone.Load)
		sc.Gauge("best_hit_rate", func() float64 { return float64(bestMilli.Load()) / 1000 })
		srv := obs.NewServer(obs.Config{Component: "cosmos-tune", Registry: reg, Logger: logger})
		if err := srv.Start(obsFlags.Listen); err != nil {
			die("observability plane", err)
		}
		logger.Info("observability plane listening", "addr", srv.URL())
		defer func() {
			sdCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(sdCtx)
		}()
	}

	evaluate := func(p core.Params, desc string) {
		if interrupted {
			return
		}
		gen, err := workloads.Build(*workload, workloads.Options{
			Threads: 4, Seed: 42,
			GraphNodes:  experiments.SmallScale().GraphNodes,
			GraphDegree: experiments.SmallScale().GraphDegree,
		})
		if err != nil {
			die("build workload", err)
		}
		cfg := sim.DefaultConfig()
		cfg.MC.Params = p
		if err := cfg.Validate(); err != nil {
			die("validate config", err)
		}
		s := sim.New(cfg, secmem.DesignCosmos())
		r, err := s.RunContext(ctx, trace.Limit(gen, *accesses), *accesses)
		if err != nil {
			logger.Warn("search interrupted; ranking completed trials",
				"completed", len(results), "err", err)
			interrupted = true
			return
		}
		hit := 1 - r.CtrMissRate
		results = append(results, result{desc: desc, hitRate: hit})
		trialsDone.Add(1)
		if m := uint64(math.Round(hit * 1000)); m > bestMilli.Load() {
			bestMilli.Store(m)
		}
	}

	base := core.DefaultParams()
	switch *phase {
	case "hyper":
		// Fixed rewards ±10 (as in §4.5), random (α, γ, ε) triples.
		fixed := base
		fixed.DataRewards = core.DataRewards{Hi: 10, Mo: 10, Ho: -10, Mi: -10}
		fixed.CtrRewards = core.CtrRewards{Hg: 10, Hb: -10, Mb: 10, Mg: -10, Eb: 10, Eg: -10}
		for i := 0; i < *trials; i++ {
			p := fixed
			p.Data = core.Hyper{Alpha: 0.001 + rng.Float64()*0.999, Gamma: 0.001 + rng.Float64()*0.999, Epsilon: rng.Float64() * 0.5}
			p.Ctr = core.Hyper{Alpha: 0.001 + rng.Float64()*0.999, Gamma: 0.001 + rng.Float64()*0.999, Epsilon: rng.Float64() * 0.1}
			evaluate(p, fmt.Sprintf("aD=%.3f gD=%.2f eD=%.3f | aC=%.3f gC=%.2f eC=%.4f",
				p.Data.Alpha, p.Data.Gamma, p.Data.Epsilon, p.Ctr.Alpha, p.Ctr.Gamma, p.Ctr.Epsilon))
		}
		// Include the paper's tuned triple for reference.
		evaluate(base, "PAPER: aD=0.090 gD=0.88 eD=0.100 | aC=0.050 gC=0.35 eC=0.0010")
	case "rewards":
		// Fixed tuned hyper-parameters, random rewards in the paper's
		// ranges (positive 0..100, negative -100..-1).
		pos := func() float64 { return float64(rng.Intn(101)) }
		neg := func() float64 { return -1 - float64(rng.Intn(100)) }
		for i := 0; i < *trials; i++ {
			p := base
			p.DataRewards = core.DataRewards{Hi: pos(), Mo: pos(), Ho: neg(), Mi: neg()}
			p.CtrRewards = core.CtrRewards{Hg: pos(), Mb: pos(), Eb: pos(), Hb: neg(), Mg: neg(), Eg: neg()}
			evaluate(p, fmt.Sprintf("D{hi=%.0f mo=%.0f ho=%.0f mi=%.0f} C{hg=%.0f mb=%.0f eb=%.0f hb=%.0f mg=%.0f eg=%.0f}",
				p.DataRewards.Hi, p.DataRewards.Mo, p.DataRewards.Ho, p.DataRewards.Mi,
				p.CtrRewards.Hg, p.CtrRewards.Mb, p.CtrRewards.Eb, p.CtrRewards.Hb, p.CtrRewards.Mg, p.CtrRewards.Eg))
		}
		evaluate(base, "PAPER: Table 1 rewards")
	default:
		die("phase", fmt.Errorf("unknown phase %q", *phase))
	}

	sort.Slice(results, func(i, j int) bool { return results[i].hitRate > results[j].hitRate })
	if *top > len(results) {
		*top = len(results)
	}
	fmt.Printf("top %d of %d combinations by LCR-CTR hit rate (%s):\n", *top, len(results), *workload)
	for i := 0; i < *top; i++ {
		fmt.Printf("%2d. hit=%.3f  %s\n", i+1, results[i].hitRate, results[i].desc)
	}
}
