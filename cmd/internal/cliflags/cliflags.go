// Package cliflags centralises the flag sets every cosmos command used to
// copy-paste: the observability plane trio (-listen, -log-format,
// -log-level), the deterministic fault plane (-fault-*, -crash-*), the
// learned-policy zoo (-policy, -policy-frozen, -list-policies), the
// campaign timeout and the parallel-engine knob (-parallel-cores). Each
// Register* call adds one group to a FlagSet; a command picks exactly the
// groups it supports, so flag names, defaults and help text stay identical
// across binaries by construction.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosmos/internal/core"
	"cosmos/internal/fault"
	"cosmos/internal/obs"
	"cosmos/internal/policytrain"
	"cosmos/internal/rl"
	"cosmos/internal/telemetry"
)

// Obs holds the observability-plane flags shared by every command.
type Obs struct {
	Listen    string
	LogFormat string
	LogLevel  string
}

// RegisterObs adds -listen, -log-format and -log-level to fs.
func RegisterObs(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.Listen, "listen", "",
		"serve the observability plane (/metrics, /runs, /events, /healthz, /debug/pprof) on this address (e.g. localhost:9090, :0)")
	fs.StringVar(&o.LogFormat, "log-format", "text", "log output format: text | json")
	fs.StringVar(&o.LogLevel, "log-level", "info", "minimum log level: debug | info | warn | error")
	return o
}

// Logger builds the command's structured logger from the parsed log flags.
func (o *Obs) Logger(component string) (*slog.Logger, error) {
	return obs.SetupLogger(component, o.LogFormat, o.LogLevel)
}

// Fault holds the deterministic fault-plane flags.
type Fault struct {
	Rate        float64
	Seed        uint64
	Kinds       string
	StepFrom    uint64
	StepTo      uint64
	CrashAt     uint64
	CrashDropRL bool
}

// RegisterFault adds the -fault-* and -crash-* flags to fs.
func RegisterFault(fs *flag.FlagSet) *Fault {
	f := &Fault{}
	fs.Float64Var(&f.Rate, "fault-rate", 0, "per-fetch fault probability for the deterministic fault plane (0 = off)")
	fs.Uint64Var(&f.Seed, "fault-seed", 1, "seed of the fault stream (same seed = same faults, every design)")
	fs.StringVar(&f.Kinds, "fault-kinds", "", "comma-separated fault kinds, each optionally kind:rate (data,ctr,mac,mt; empty = all at -fault-rate)")
	fs.Uint64Var(&f.StepFrom, "fault-step-from", 0, "start of the injection window in access steps (fault bursts; 0 = from the first access)")
	fs.Uint64Var(&f.StepTo, "fault-step-to", 0, "end of the injection window in access steps, half-open (0 = unbounded)")
	fs.Uint64Var(&f.CrashAt, "crash-at", 0, "crash the memory controller before this access number and replay recovery (0 = never)")
	fs.BoolVar(&f.CrashDropRL, "crash-drop-rl", false, "the crash also loses the RL predictor tables")
	return f
}

// Config resolves the parsed flags into a fault campaign: nil when the
// plane is off (no rate, no crash point), so a zero-flag run stays
// bit-identical to a build with no fault section at all. Callers validate
// the returned config on their usual path (sim.Config.Validate or
// fault.Config.Validate).
func (f *Fault) Config() *fault.Config {
	if f.Rate <= 0 && f.CrashAt == 0 {
		return nil
	}
	return &fault.Config{
		Seed: f.Seed, Rate: f.Rate, Kinds: f.Kinds,
		StepFrom: f.StepFrom, StepTo: f.StepTo,
		CrashAt: f.CrashAt, CrashDropRL: f.CrashDropRL,
	}
}

// Spans holds the span-tracing and watchdog flags.
type Spans struct {
	SampleEvery uint64
	TopK        int
	Watch       bool
}

// RegisterSpans adds -span-sample, -span-topk and -watch to fs.
func RegisterSpans(fs *flag.FlagSet) *Spans {
	s := &Spans{}
	fs.Uint64Var(&s.SampleEvery, "span-sample", 0,
		"build a full span tree for 1 in this many accesses and serve the slowest exemplars on /spans (0 = off; histogram tails are collected either way once enabled)")
	fs.IntVar(&s.TopK, "span-topk", 16, "keep this many slowest span-tree exemplars")
	fs.BoolVar(&s.Watch, "watch", false,
		"run the online phase/anomaly watchdog over the interval-sampler stream (emits phase_change/anomaly events and /phases)")
	return s
}

// Enabled reports whether span tracing is on.
func (s *Spans) Enabled() bool { return s.SampleEvery > 0 }

// Recorder builds the configured span recorder, or nil when tracing is off
// — the nil keeps Step allocation-free and Results bit-identical.
func (s *Spans) Recorder() *telemetry.SpanRecorder {
	if !s.Enabled() {
		return nil
	}
	return telemetry.NewSpanRecorder(s.SampleEvery, s.TopK)
}

// Policy holds the learned-policy zoo flags.
type Policy struct {
	Kind   string
	Frozen string
	Role   string
	Log    string
	List   bool
}

// RegisterPolicy adds the -policy* flags and -list-policies to fs.
func RegisterPolicy(fs *flag.FlagSet) *Policy {
	p := &Policy{}
	fs.StringVar(&p.Kind, "policy", "",
		"predictor policy kind ("+strings.Join(rl.PolicyKinds(), ", ")+"; empty = the design's tabular default)")
	fs.StringVar(&p.Frozen, "policy-frozen", "",
		"deploy a frozen cosmos-policy-v1 file (predictor role read from the file; override with -policy-role)")
	fs.StringVar(&p.Role, "policy-role", "both",
		"predictor role the -policy/-policy-frozen selection applies to: data | ctr | both")
	fs.StringVar(&p.Log, "policy-log", "",
		"dump every predictor transition as JSONL to this file (training data for cosmos-policy)")
	fs.BoolVar(&p.List, "list-policies", false, "list the available policy kinds and exit")
	return p
}

// ListPolicies writes the -list-policies table.
func ListPolicies(w io.Writer) {
	fmt.Fprintln(w, "available policy kinds:")
	for _, d := range rl.PolicyKindDescriptions() {
		fmt.Fprintf(w, "  %-11s %s\n", d.Kind, d.Desc)
	}
}

// Apply resolves the parsed policy flags into the Params' per-role policy
// specs. An unknown kind or role, an unreadable frozen file, or a frozen
// file without a resolvable role all return errors naming the valid
// choices. No flags set leaves the Params untouched, so the nil-spec
// hash-stability guarantee holds for every policy-free invocation.
func (p *Policy) Apply(params *core.Params) error {
	data, ctr, err := p.Specs()
	if err != nil {
		return err
	}
	if data != nil {
		params.DataPolicy = data
	}
	if ctr != nil {
		params.CtrPolicy = ctr
	}
	return nil
}

// Specs resolves the parsed policy flags into per-role policy specs (nil =
// that role keeps the design default) — the form experiments.WithPolicy
// consumes. Errors mirror Apply's.
func (p *Policy) Specs() (data, ctr *rl.PolicySpec, err error) {
	roles, err := p.roles()
	if err != nil {
		return nil, nil, err
	}
	var byRole [2]*rl.PolicySpec
	if p.Kind != "" {
		spec := &rl.PolicySpec{Kind: p.Kind}
		if err := spec.Validate(); err != nil {
			return nil, nil, err
		}
		for _, role := range roles {
			byRole[roleIndex(role)] = spec
		}
	}
	if p.Frozen != "" {
		sn, err := rl.LoadSnapshot(p.Frozen)
		if err != nil {
			return nil, nil, err
		}
		role := sn.Meta.Role
		if p.Role != "both" {
			role = p.Role
		}
		if role == "" {
			return nil, nil, fmt.Errorf("cliflags: %s carries no predictor role; pass -policy-role (data | ctr)", p.Frozen)
		}
		if err := policytrain.ValidateRole(role); err != nil {
			return nil, nil, err
		}
		byRole[roleIndex(role)] = &rl.PolicySpec{Kind: sn.Kind, Frozen: &sn}
	}
	return byRole[0], byRole[1], nil
}

func (p *Policy) roles() ([]string, error) {
	switch p.Role {
	case "both":
		return policytrain.Roles(), nil
	case policytrain.RoleData, policytrain.RoleCtr:
		return []string{p.Role}, nil
	}
	return nil, fmt.Errorf("cliflags: unknown policy role %q (valid: data, ctr, both)", p.Role)
}

func roleIndex(role string) int {
	if role == policytrain.RoleData {
		return 0
	}
	return 1
}

// Coord holds the distributed-campaign flags: one binary is either a
// coordinator (-serve), a worker (-join), or a plain single-node campaign
// (neither).
type Coord struct {
	Serve      string
	Join       string
	LeaseTTL   time.Duration
	WorkerName string
	PollIvl    time.Duration
	Reconnect  time.Duration
}

// RegisterCoord adds the -serve / -join flag group to fs.
func RegisterCoord(fs *flag.FlagSet) *Coord {
	c := &Coord{}
	fs.StringVar(&c.Serve, "serve", "",
		"run as campaign coordinator: serve the lease-based work queue (and the observability plane) on this address; requires -results-dir")
	fs.StringVar(&c.Join, "join", "",
		"run as campaign worker: pull leases from the coordinator at this base URL (e.g. http://host:9090) and stream results back")
	fs.DurationVar(&c.LeaseTTL, "lease-ttl", 10*time.Second,
		"coordinator lease time-to-live; a worker missing heartbeats for this long has its cell re-leased")
	fs.StringVar(&c.WorkerName, "worker-name", "",
		"worker identity in leases and the coordinator's /runs (default <hostname>-<pid>)")
	fs.DurationVar(&c.PollIvl, "poll-interval", 250*time.Millisecond,
		"worker sleep between empty lease polls (jittered)")
	fs.DurationVar(&c.Reconnect, "reconnect-budget", 60*time.Second,
		"how long a worker tolerates an unreachable coordinator before exiting with the lost-coordinator code")
	return c
}

// Name resolves the worker identity, defaulting to <hostname>-<pid>.
func (c *Coord) Name() string {
	if c.WorkerName != "" {
		return c.WorkerName
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// RegisterTimeout adds the -timeout flag to fs.
func RegisterTimeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "abort after this duration (0 = none)")
}

// RegisterParallelCores adds the -parallel-cores flag to fs.
func RegisterParallelCores(fs *flag.FlagSet) *int {
	return fs.Int("parallel-cores", 0,
		"run each simulation on the deterministic epoch-barrier parallel engine with up to this many worker goroutines; results are bit-identical to serial (0/1 = serial engine)")
}

// SignalContext builds the command's root context: SIGINT/SIGTERM cancel
// it (in-flight simulations stop within sim.CancelCheckEvery steps), and a
// positive timeout bounds the whole run. The returned stop releases both.
func SignalContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}
