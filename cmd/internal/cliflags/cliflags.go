// Package cliflags centralises the flag sets every cosmos command used to
// copy-paste: the observability plane trio (-listen, -log-format,
// -log-level), the deterministic fault plane (-fault-*, -crash-*), the
// campaign timeout and the parallel-engine knob (-parallel-cores). Each
// Register* call adds one group to a FlagSet; a command picks exactly the
// groups it supports, so flag names, defaults and help text stay identical
// across binaries by construction.
package cliflags

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cosmos/internal/fault"
	"cosmos/internal/obs"
)

// Obs holds the observability-plane flags shared by every command.
type Obs struct {
	Listen    string
	LogFormat string
	LogLevel  string
}

// RegisterObs adds -listen, -log-format and -log-level to fs.
func RegisterObs(fs *flag.FlagSet) *Obs {
	o := &Obs{}
	fs.StringVar(&o.Listen, "listen", "",
		"serve the observability plane (/metrics, /runs, /events, /healthz, /debug/pprof) on this address (e.g. localhost:9090, :0)")
	fs.StringVar(&o.LogFormat, "log-format", "text", "log output format: text | json")
	fs.StringVar(&o.LogLevel, "log-level", "info", "minimum log level: debug | info | warn | error")
	return o
}

// Logger builds the command's structured logger from the parsed log flags.
func (o *Obs) Logger(component string) (*slog.Logger, error) {
	return obs.SetupLogger(component, o.LogFormat, o.LogLevel)
}

// Fault holds the deterministic fault-plane flags.
type Fault struct {
	Rate        float64
	Seed        uint64
	Kinds       string
	CrashAt     uint64
	CrashDropRL bool
}

// RegisterFault adds the -fault-* and -crash-* flags to fs.
func RegisterFault(fs *flag.FlagSet) *Fault {
	f := &Fault{}
	fs.Float64Var(&f.Rate, "fault-rate", 0, "per-fetch fault probability for the deterministic fault plane (0 = off)")
	fs.Uint64Var(&f.Seed, "fault-seed", 1, "seed of the fault stream (same seed = same faults, every design)")
	fs.StringVar(&f.Kinds, "fault-kinds", "", "comma-separated fault kinds, each optionally kind:rate (data,ctr,mac,mt; empty = all at -fault-rate)")
	fs.Uint64Var(&f.CrashAt, "crash-at", 0, "crash the memory controller before this access number and replay recovery (0 = never)")
	fs.BoolVar(&f.CrashDropRL, "crash-drop-rl", false, "the crash also loses the RL predictor tables")
	return f
}

// Config resolves the parsed flags into a fault campaign: nil when the
// plane is off (no rate, no crash point), so a zero-flag run stays
// bit-identical to a build with no fault section at all. Callers validate
// the returned config on their usual path (sim.Config.Validate or
// fault.Config.Validate).
func (f *Fault) Config() *fault.Config {
	if f.Rate <= 0 && f.CrashAt == 0 {
		return nil
	}
	return &fault.Config{
		Seed: f.Seed, Rate: f.Rate, Kinds: f.Kinds,
		CrashAt: f.CrashAt, CrashDropRL: f.CrashDropRL,
	}
}

// RegisterTimeout adds the -timeout flag to fs.
func RegisterTimeout(fs *flag.FlagSet) *time.Duration {
	return fs.Duration("timeout", 0, "abort after this duration (0 = none)")
}

// RegisterParallelCores adds the -parallel-cores flag to fs.
func RegisterParallelCores(fs *flag.FlagSet) *int {
	return fs.Int("parallel-cores", 0,
		"run each simulation on the deterministic epoch-barrier parallel engine with up to this many worker goroutines; results are bit-identical to serial (0/1 = serial engine)")
}

// SignalContext builds the command's root context: SIGINT/SIGTERM cancel
// it (in-flight simulations stop within sim.CancelCheckEvery steps), and a
// positive timeout bounds the whole run. The returned stop releases both.
func SignalContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}
