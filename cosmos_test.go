package cosmos

import (
	"context"
	"errors"
	"testing"

	"cosmos/internal/secmem"
)

func TestRunBasic(t *testing.T) {
	r, err := Run(RunSpec{Workload: "DFS", Design: "COSMOS", Accesses: 50_000, GraphNodes: 50_000, GraphDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses != 50_000 || r.IPC <= 0 {
		t.Fatalf("results: %+v", r)
	}
	if r.DataPred == nil || r.CtrPred == nil {
		t.Fatal("COSMOS must report predictor stats")
	}
}

func TestRunUnknownNames(t *testing.T) {
	if _, err := Run(RunSpec{Workload: "DFS", Design: "nope"}); err == nil {
		t.Fatal("unknown design must error")
	}
	if _, err := Run(RunSpec{Workload: "nope", Design: "NP"}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestCompareSecureCostsMore(t *testing.T) {
	speedup, err := Compare("canneal", "MorphCtr", "NP", 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if speedup <= 1 {
		t.Fatalf("NP should beat MorphCtr, speedup=%v", speedup)
	}
}

func TestRegistriesNonEmpty(t *testing.T) {
	if len(Workloads()) < 15 {
		t.Fatalf("workloads: %v", Workloads())
	}
	if len(Designs()) != 8 {
		t.Fatalf("designs: %v", Designs())
	}
	if len(Experiments()) != 27 {
		t.Fatalf("experiments: %v", Experiments())
	}
}

// TestDesignsMatchRegistry pins the public design list to the internal
// registry: every listed name resolves, every registered design is listed.
func TestDesignsMatchRegistry(t *testing.T) {
	names := Designs()
	all := secmem.AllDesigns()
	if len(names) != len(all) {
		t.Fatalf("Designs lists %d names, registry has %d", len(names), len(all))
	}
	for i, d := range all {
		if names[i] != d.Name {
			t.Errorf("Designs[%d] = %s, registry has %s", i, names[i], d.Name)
		}
		resolved, err := secmem.DesignByName(names[i])
		if err != nil {
			t.Errorf("Designs lists unresolvable %q: %v", names[i], err)
		} else if resolved.Name != names[i] {
			t.Errorf("DesignByName(%q).Name = %q", names[i], resolved.Name)
		}
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunSpec{Workload: "mcf", Design: "NP", Accesses: 30_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunExperimentContextResume(t *testing.T) {
	dir := t.TempDir()
	var executed, restored int
	opts := ExperimentOpts{ResultsDir: dir, Progress: func(u RunUpdate) {
		switch u.Source {
		case "executed":
			executed++
		case "restored":
			restored++
		}
	}}
	a, err := RunExperimentContext(context.Background(), "fig2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if executed == 0 {
		t.Fatal("first campaign should execute simulations")
	}

	executed, restored = 0, 0
	b, err := RunExperimentContext(context.Background(), "fig2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("resumed campaign executed %d simulations, want 0", executed)
	}
	if restored == 0 {
		t.Fatal("resumed campaign restored nothing")
	}
	if a.String() != b.String() {
		t.Fatalf("resumed table differs:\n%s\nvs\n%s", a, b)
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	tb, err := RunExperiment("tab2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() == "" {
		t.Fatal("empty table")
	}
	if _, err := RunExperiment("fig99", 0); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestSecureMemoryFacade(t *testing.T) {
	m, err := NewSecureMemory(1<<16, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	var l Line
	copy(l[:], "through the facade")
	if err := m.Write(0x40, l); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x40)
	if err != nil || got != l {
		t.Fatalf("round trip failed: %v", err)
	}
	m.TamperCiphertext(0x40, func(ln *Line) { ln[0] ^= 1 })
	if _, err := m.Read(0x40); err == nil {
		t.Fatal("tampering must be detected through the facade")
	} else if errors.Is(err, nil) {
		t.Fatal("unreachable")
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := RunSpec{Workload: "mcf", Design: "COSMOS", Accesses: 30_000, Seed: 7}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(spec)
	if a.Cycles != b.Cycles || a.Traffic != b.Traffic {
		t.Fatal("Run must be deterministic for equal specs")
	}
}
